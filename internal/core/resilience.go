package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/xid"
)

// This file is the resilience layer: per-transaction deadlines enforced by
// a watchdog reaper, context binding (cancellation → clean abort), the
// MaxLive admission gate, and the Run retry engine. The paper's primitives
// may block indefinitely — liveness is delegated to deadlock detection —
// but a production facility needs bounded waiting, automatic restart of
// victims, and graceful degradation under overload.

// watchdogTick is how often the reaper scans for expired deadlines; it
// bounds how late past its deadline a transaction can be reaped.
const watchdogTick = 10 * time.Millisecond

// ensureWatchdog starts the reaper the first time a transaction carries a
// deadline. It never starts after Close.
func (m *Manager) ensureWatchdog() {
	m.watchdogOnce.Do(func() {
		m.watchdogOn.Store(true)
		//asset:goroutine joined-by=channel
		go m.watchdog()
	})
}

// watchdog is the reaper goroutine: it periodically scans the descriptor
// table and aborts any transaction past its deadline, with a reason
// wrapping ErrTxnDeadline (counted in Stats.Reaped). Committing
// transactions are exempt — they are past the commit point and their group
// resolves on its own.
func (m *Manager) watchdog() {
	defer close(m.watchdogDone)
	tick := time.NewTicker(watchdogTick)
	defer tick.Stop()
	for {
		select {
		case <-m.closeCh:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		var expired []*txn
		m.txns.Range(func(_ uint64, t *txn) bool {
			if d := t.deadline.Load(); d != 0 && now >= d && !t.st().Terminated() {
				expired = append(expired, t)
			}
			return true
		})
		for _, t := range expired {
			m.mu.Lock()
			if st := t.st(); !st.Terminated() && st != xid.StatusCommitting {
				m.abortLocked(t, fmt.Errorf("%w: %w: reaped %v", ErrAborted, ErrTxnDeadline, t.id))
			}
			m.mu.Unlock()
		}
	}
}

// watchCtx runs per transaction with a bound cancellable context: it
// converts the context's expiry into an abort, which wakes every wait the
// transaction is parked in — lock waits observe the same ctx directly,
// dependency/commit waits select on abortCh, and begin waits do both.
func (m *Manager) watchCtx(t *txn) {
	select {
	case <-t.ctx.Done():
		m.mu.Lock()
		m.ctxAbortLocked(t, t.ctx)
		m.mu.Unlock()
	case <-t.term:
	}
}

// ctxAbortLocked aborts t because a context governing it is done, unless
// it has already terminated or passed the commit point. Caller holds m.mu.
func (m *Manager) ctxAbortLocked(t *txn, ctx context.Context) {
	if st := t.st(); !st.Terminated() && st != xid.StatusCommitting {
		m.abortLocked(t, abortReason(fmt.Errorf("core: context done: %w", context.Cause(ctx))))
	}
}

// admitOne acquires a MaxLive admission slot for t, queueing
// deadline-aware: the wait is bounded by AdmitTimeout, the transaction's
// deadline, and its context, whichever is tightest. On overload it sheds —
// aborts t and returns ErrOverload. Called without m.mu.
func (m *Manager) admitOne(t *txn) error {
	select { // fast path: a slot is free
	case m.admit <- struct{}{}:
		t.admitted.Store(true)
		return nil
	default:
	}
	wait := m.cfg.AdmitTimeout
	tighten := func(at time.Time) {
		if rem := time.Until(at); wait == 0 || rem < wait {
			wait = rem
		}
	}
	if d := t.deadline.Load(); d != 0 {
		tighten(time.Unix(0, d))
	}
	var ctxDone <-chan struct{}
	if t.ctx != nil {
		ctxDone = t.ctx.Done()
		if cd, ok := t.ctx.Deadline(); ok {
			tighten(cd)
		}
	}
	if wait <= 0 {
		// No queueing budget (AdmitTimeout unset and no deadline headroom):
		// shed immediately rather than park an unbounded queue.
		return m.shed(t)
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case m.admit <- struct{}{}:
		t.admitted.Store(true)
		return nil
	case <-timer.C:
		return m.shed(t)
	case <-ctxDone:
		m.mu.Lock()
		m.ctxAbortLocked(t, t.ctx)
		m.mu.Unlock()
		return txnOutcome(t)
	case <-t.abortCh: // e.g. reaped by the watchdog while queued
		return txnOutcome(t)
	case <-m.closeCh:
		return ErrClosed
	}
}

// shed rejects t at the admission gate: the transaction is aborted (its
// descriptor would otherwise linger initiated forever) and the caller gets
// ErrOverload, which Run classifies as retryable.
func (m *Manager) shed(t *txn) error {
	m.stats.overloads.Add(1)
	err := fmt.Errorf("%w (MaxLive=%d)", ErrOverload, m.cfg.MaxLive)
	m.abortTxn(t, abortReason(err))
	return err
}

// releaseSlot returns t's admission slot, if it holds one. Idempotent: the
// swap guarantees a slot deposited once is withdrawn exactly once even when
// an abort cascade and a failed begin race to release it.
func (m *Manager) releaseSlot(t *txn) {
	if t.admitted.Swap(false) {
		<-m.admit
	}
}

// txnOutcome reports t's abort reason (ErrAborted if none was recorded),
// for paths that observed the transaction die while waiting on it.
func txnOutcome(t *txn) error {
	if err := t.abErr; err != nil {
		return err
	}
	return ErrAborted
}

// RunOptions configures the Run retry engine. The zero value is usable:
// eight attempts with 1ms base backoff capped at 64ms.
type RunOptions struct {
	// MaxAttempts is the attempt budget (first try included); <=0 means 8.
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt; it doubles per
	// attempt (full jitter) up to MaxBackoff. <=0 means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff; <=0 means 64ms.
	MaxBackoff time.Duration
	// Deadline is the per-attempt transaction deadline (TxnOptions
	// semantics: 0 inherits Config.TxnDeadline, <0 disables).
	Deadline time.Duration
	// Retryable, when non-nil, extends the default classification: an
	// error is retried when Retryable(err) OR the package-level Retryable
	// reports true.
	Retryable func(error) bool
	// RetryAfter, when non-nil, extracts a server-supplied backoff floor
	// from an error (e.g. the retry-after hint an overloaded server sends
	// with ErrOverload). A positive return floors the next backoff sleep.
	RetryAfter func(error) time.Duration
}

// Retryable reports whether err is worth a fresh attempt: deadlock
// victims, lock and transaction deadline expiries, admission sheds,
// networked-tier transport drops and lease expiries, and anything
// explicitly tagged ErrRetryable. Context expiry, logic errors, and
// unknown commit outcomes are terminal.
func Retryable(err error) bool {
	return err != nil && (errors.Is(err, ErrRetryable) ||
		errors.Is(err, ErrDeadlock) ||
		errors.Is(err, ErrLockTimeout) ||
		errors.Is(err, ErrOverload) ||
		errors.Is(err, ErrTxnDeadline) ||
		errors.Is(err, ErrTooManyTxns) ||
		errors.Is(err, ErrLeaseExpired) ||
		errors.Is(err, ErrConnLost))
}

// Run executes fn as a transaction (initiate, begin, commit) and
// automatically retries retryable failures — deadlock victimhood, lock
// timeouts, watchdog reaps, admission sheds — with capped exponential
// backoff plus jitter, under an attempt budget. ctx bounds the whole
// engagement: each attempt's transaction is bound to it, and backoff sleeps
// abort when it dies. Terminal errors (and ctx expiry) return immediately;
// exhausting the budget returns the last error wrapped with ErrRetryable.
func (m *Manager) Run(ctx context.Context, opts RunOptions, fn TxnFunc) error {
	return Retry(ctx, opts, func() { m.stats.retries.Add(1) }, func(ctx context.Context) error {
		return m.runOnce(ctx, opts, fn)
	})
}

// Retry is the engine beneath Manager.Run — and beneath the networked
// client's Run, which retries whole sessions through the same policy. It
// drives attempt until success, a terminal error, ctx expiry, or the
// attempt budget runs dry, sleeping capped exponential backoff with full
// jitter between attempts; a RetryAfter hint (e.g. from an overloaded
// server) floors the sleep. onRetry, if non-nil, runs before each
// re-attempt (Manager.Run counts retry stats there).
func Retry(ctx context.Context, opts RunOptions, onRetry func(), attempt func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	base := opts.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	maxB := opts.MaxBackoff
	if maxB <= 0 {
		maxB = 64 * time.Millisecond
	}
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			if onRetry != nil {
				onRetry()
			}
			backoff := base << uint(min(try-1, 20))
			if backoff <= 0 || backoff > maxB {
				backoff = maxB
			}
			// Full jitter decorrelates retrying victims so they do not
			// re-collide in lockstep.
			backoff = backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
			if opts.RetryAfter != nil {
				// An explicit server hint floors the jittered sleep: backing
				// off less than the server asked would re-shed immediately.
				if floor := opts.RetryAfter(err); floor > backoff {
					backoff = floor
				}
			}
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return errors.Join(ctx.Err(), err)
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return errors.Join(cerr, err)
		}
		err = attempt(ctx)
		if err == nil {
			return nil
		}
		if !Retryable(err) && (opts.Retryable == nil || !opts.Retryable(err)) {
			return err
		}
	}
	return fmt.Errorf("core: giving up after %d attempts: %w", attempts, errors.Join(ErrRetryable, err))
}

// runOnce performs a single initiate/begin/commit attempt.
func (m *Manager) runOnce(ctx context.Context, opts RunOptions, fn TxnFunc) error {
	id, err := m.InitiateWith(fn, TxnOptions{Ctx: ctx, Deadline: opts.Deadline})
	if err != nil {
		return err
	}
	if err := m.BeginCtx(ctx, id); err != nil {
		return err
	}
	return m.CommitCtx(ctx, id)
}
