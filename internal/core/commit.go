package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/wal"
	"repro/internal/xid"
)

// Commit commits transaction id, implementing §4.2's commit algorithm. It
// blocks until the transaction's code has completed, then resolves
// dependencies: outgoing CD/AD edges block until the supporting transaction
// terminates (an aborted AD supporter aborts this transaction); GC edges
// gather the whole group, every member of which is driven to completion and
// committed atomically under a single commit record. Commit returns nil on
// success (the paper's 1) and ErrAborted if the transaction aborts instead
// (the paper's 0).
func (m *Manager) Commit(id xid.TID) error {
	return m.CommitCtx(context.Background(), id)
}

// CommitCtx is Commit bounded by a context: if ctx expires while the
// driver is blocked — on the body's completion or on a CD/AD/GC dependency
// obstacle — the transaction is aborted (its group with it) and CommitCtx
// returns the abort reason. Once the group passes the commit point
// (commit record appended) the context is ignored; the commit's outcome is
// reported as usual.
func (m *Manager) CommitCtx(ctx context.Context, id xid.TID) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	m.mu.Lock()
	t, err := m.lookup(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if done != nil && ctx.Err() != nil {
		// Dead on arrival: a cancelled caller must not push the group past
		// the commit point.
		m.ctxAbortLocked(t, ctx)
		done = nil
	}
	for {
		switch t.st() {
		case xid.StatusCommitted:
			m.mu.Unlock()
			return nil
		case xid.StatusAborted, xid.StatusAborting:
			err := t.abErr
			m.mu.Unlock()
			if err == nil {
				err = ErrAborted
			}
			return err
		case xid.StatusInitiated:
			m.mu.Unlock()
			return ErrNotBegun
		case xid.StatusPrepared:
			// The transaction voted in a distributed commit; only the
			// coordinator's verdict (Decide) may terminate it.
			m.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrPrepared, id)
		case xid.StatusRunning:
			// commit blocks until execution completes (§2.1).
			ch := t.done
			m.mu.Unlock()
			select {
			case <-ch:
			case <-done:
				m.mu.Lock()
				m.ctxAbortLocked(t, ctx)
				m.mu.Unlock()
				done = nil
			}
			m.mu.Lock()
			continue
		}

		// t is completed (or committing under another driver). Drive its
		// whole GC group.
		group, waitFor := m.examineGroupLocked(t)
		if group == nil && waitFor == nil {
			// The group aborted underneath us.
			continue
		}
		if waitFor != nil {
			// Block until the obstacle resolves, watching for our own
			// abort. Register waits-for edges so cross-mechanism deadlocks
			// are caught.
			var victim xid.TID
			for _, member := range group {
				if member.id != waitFor.id {
					if v, _ := m.waits.Add(member.id, waitFor.id); !v.IsNil() {
						victim = v
					}
				}
			}
			if !victim.IsNil() {
				if vt, ok := m.txns.Get(uint64(victim)); ok {
					m.abortLocked(vt, fmt.Errorf("%w: commit-wait deadlock victim: %w", ErrAborted, ErrDeadlock))
				}
			}
			waitCh := waitFor.waitCh
			myAbort := t.abortCh
			m.mu.Unlock()
			select {
			case <-waitCh:
			case <-myAbort:
			case <-done:
				m.mu.Lock()
				m.ctxAbortLocked(t, ctx)
				m.mu.Unlock()
				done = nil
			}
			m.mu.Lock()
			for _, member := range group {
				if member.id != waitFor.id {
					m.waits.Remove(member.id, waitFor.id)
				}
			}
			continue
		}

		// No obstacles: commit the group atomically. The outcome is read
		// from the transaction status on the next loop pass rather than
		// assumed: a failed commit-record append or log force aborts the
		// group, and the caller must see that failure — returning nil here
		// would acknowledge a commit whose record may never have reached
		// the disk.
		m.commitGroupLocked(group)
	}
}

// obstacle names what a commit driver must wait for: a transaction's
// completion or termination.
type obstacle struct {
	id     xid.TID
	waitCh <-chan struct{}
}

// examineGroupLocked inspects t's GC component. It returns (group, nil)
// when every member is completed and free of blocking dependencies,
// (group, obstacle) when the driver must wait, and (nil, nil) when the
// group aborted (t included). Caller holds m.mu.
func (m *Manager) examineGroupLocked(t *txn) ([]*txn, *obstacle) {
	comp := m.deps.GCComponent(t.id)
	group := make([]*txn, 0, len(comp))
	for _, mid := range comp {
		member, ok := m.txns.Get(uint64(mid))
		if !ok {
			continue // reaped: cannot happen for live groups
		}
		group = append(group, member)
	}
	// An aborted member dooms the group.
	for _, member := range group {
		if member.st() == xid.StatusAborting || member.st() == xid.StatusAborted {
			for _, other := range group {
				m.abortLocked(other, fmt.Errorf("%w: group member %v aborted", ErrAborted, member.id))
			}
			return nil, nil
		}
	}
	// Every member must have completed execution. (An initiated member
	// blocks the commit until someone begins it, per the paper's blocking
	// commit; its done channel covers both.) A member already in the
	// committing state is being driven by another commit — with batched
	// commits the driver may be off the mutex forcing the log — so this
	// driver waits for that outcome instead of double-committing.
	for _, member := range group {
		switch member.st() {
		case xid.StatusInitiated, xid.StatusRunning:
			return group, &obstacle{id: member.id, waitCh: member.done}
		case xid.StatusCommitting, xid.StatusPrepared:
			// Prepared is "committing with the verdict pending": the local
			// driver waits for the coordinator's decision like it waits for
			// a batched flush.
			return group, &obstacle{id: member.id, waitCh: member.term}
		}
	}
	// Blocking dependencies to transactions outside the group must be
	// resolved by the supporter's termination (commit steps 2a/2b).
	inGroup := make(map[xid.TID]bool, len(group))
	for _, member := range group {
		inGroup[member.id] = true
	}
	// Exclusion: a group containing a transaction whose EXC partner is
	// already committing (or committed) must lose — this check runs under
	// the manager mutex, so of two racing EXC partners exactly one passes
	// even when batched commits force the log off the mutex.
	for _, member := range group {
		for _, e := range m.deps.Outgoing(member.id) {
			if !e.Types.Has(xid.DepEXC) {
				continue
			}
			if p, ok := m.txns.Get(uint64(e.Other)); ok &&
				(p.st() == xid.StatusCommitting || p.st() == xid.StatusCommitted ||
					p.st() == xid.StatusPrepared) {
				// A prepared partner counts as committing: it promised a
				// coordinator it can commit, so it must win the exclusion.
				for _, other := range group {
					m.abortLocked(other, fmt.Errorf("%w: excluded by committing partner %v", ErrAborted, p.id))
				}
				return nil, nil
			}
		}
	}
	for _, member := range group {
		for _, e := range m.deps.Outgoing(member.id) {
			// Only CD/AD delay a commit; BD/BAD gate begin (already
			// satisfied once the member ran) and EXC never waits.
			if !e.Types.CommitBlocking() || inGroup[e.Other] {
				continue
			}
			sup, ok := m.txns.Get(uint64(e.Other))
			if !ok || sup.st().Terminated() {
				// Terminated supporters leave no edges (RemoveNode), but be
				// defensive: a committed supporter satisfies everything; an
				// aborted one with an AD would have aborted us already.
				continue
			}
			return group, &obstacle{id: sup.id, waitCh: sup.term}
		}
	}
	return group, nil
}

// commitGroupLocked performs the final commit of a ready group: one commit
// record, durable flush, then lock release and dependency cleanup for every
// member. Caller holds m.mu.
//
// The release calls below are the commit's visibility point; the durable
// flush must dominate them on every path (decide-before-release, §11).
//asset:durable before=ReleaseAll,EscrowCommit
func (m *Manager) commitGroupLocked(group []*txn) {
	tids := make([]xid.TID, len(group))
	for i, member := range group {
		tids[i] = member.id
		member.setSt(xid.StatusCommitting)
	}
	// Commit record for the whole group; one log force covers all members
	// (this is what experiment E6 measures).
	if _, err := m.log.Append(&wal.Record{Type: wal.TCommit, TIDs: tids}); err != nil {
		for _, member := range group {
			m.abortLocked(member, fmt.Errorf("core: commit record append failed: %w", err))
		}
		return
	}
	var flushErr error
	if m.cfg.BatchedCommits || m.cfg.GroupCommit {
		// Group commit, either flavour: release the manager mutex around
		// the physical force so concurrent committers share one fsync —
		// via the Coalescer's flush gate (BatchedCommits) or the
		// segmented log's leader/cohort batch protocol (GroupCommit).
		// The members sit in the committing state meanwhile; every other
		// path treats committing as untouchable (Abort waits on term,
		// drivers wait via examineGroupLocked, FormDependency rejects).
		m.mu.Unlock()
		flushErr = m.log.Flush()
		m.mu.Lock()
	} else {
		flushErr = m.log.Flush()
	}
	if flushErr != nil {
		for _, member := range group {
			m.abortLocked(member, fmt.Errorf("core: commit flush failed: %w", flushErr))
		}
		return
	}
	m.stats.logForces.Add(1)
	m.stats.groupSize.Add(uint64(len(group)))
	// A commit forces the abort of two kinds of dependents: begin-on-abort
	// transactions (their trigger can no longer fire) and exclusion
	// partners (at most one side commits). Collect them before the edges
	// disappear with RemoveNode.
	var forcedAborts []*txn
	for _, member := range group {
		for _, e := range m.deps.Incoming(member.id) {
			if e.Types.Has(xid.DepBAD) || e.Types.Has(xid.DepEXC) {
				if dependent, ok := m.txns.Get(uint64(e.Other)); ok {
					forcedAborts = append(forcedAborts, dependent)
				}
			}
		}
	}
	for _, member := range group {
		// The member's committed updates change durable state relative to
		// the last checkpoint.
		for _, u := range member.undo {
			if u.kind == wal.KindDelete {
				m.dirty[u.oid] = dirtyDelete
			} else {
				m.dirty[u.oid] = dirtyUpsert
			}
		}
		member.undo = nil
		member.setSt(xid.StatusCommitted)
		m.deps.RemoveNode(member.id)
		// Fold the member's escrow reservations into their ledgers before
		// the locks drop: a waiter admitted by the freed headroom must see
		// the committed value the fold produces.
		m.locks.EscrowCommit(member.id)
		m.locks.ReleaseAll(member.id)
		m.waits.RemoveNode(member.id)
		m.releaseSlot(member)
		m.live.Add(-1)
		m.stats.commits.Add(1)
		member.closeDone()
		member.closeTerm()
		if m.cfg.ReapTerminated {
			m.txns.Delete(uint64(member.id))
		}
	}
	for _, dependent := range forcedAborts {
		m.abortLocked(dependent, fmt.Errorf("%w: excluded by a committed partner", ErrAborted))
	}
	m.cond.Broadcast()
}

// Abort aborts transaction id, implementing §4.2's abort algorithm: install
// before images for every update the transaction is responsible for,
// release its locks, abort dependents connected by AD/GC (and BD) edges,
// and drop CD edges. It returns nil if the abort succeeds or the
// transaction was already aborted, and ErrAlreadyCommitted if it committed
// first (the paper's 0).
func (m *Manager) Abort(id xid.TID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, err := m.lookup(id)
	if err != nil {
		return err
	}
	for t.st() == xid.StatusCommitting {
		// The transaction is past its commit record (a batched-commit
		// driver may be forcing the log); wait for the outcome rather than
		// yanking a half-committed group.
		term := t.term
		m.mu.Unlock()
		<-term
		m.mu.Lock()
	}
	switch t.st() {
	case xid.StatusCommitted:
		return ErrAlreadyCommitted
	case xid.StatusAborted:
		return nil
	case xid.StatusPrepared:
		// No unilateral abort once the yes vote is out; the coordinator's
		// verdict (Decide) is the only terminator.
		return fmt.Errorf("%w: %v", ErrPrepared, id)
	}
	m.abortLocked(t, fmt.Errorf("%w: explicit abort", ErrAborted))
	return nil
}

// abortReason normalizes an abort cause so it always matches
// errors.Is(err, ErrAborted) while preserving the original error (and in
// particular ErrDeadlock identity, which retry loops dispatch on).
func abortReason(err error) error {
	if err == nil || errors.Is(err, ErrAborted) {
		return err
	}
	return errors.Join(ErrAborted, err)
}

// AbortReason returns why the transaction aborted, or nil if it has not
// aborted (or was reaped).
func (m *Manager) AbortReason(id xid.TID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.txns.Get(uint64(id)); ok {
		return t.abErr
	}
	return nil
}

// abortTxn is the internal abort entry point (function failure, panic,
// dependency propagation from outside the mutex).
func (m *Manager) abortTxn(t *txn, reason error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.abortLocked(t, reason)
}

// abortLocked aborts t and, transitively, every dependent that must abort
// with it (AD, GC, and BD edges). It runs in three phases so that undo is
// correct even when cascade members wrote the same objects through permits:
// (1) mark the whole cascade set aborting and cancel its lock waits, (2)
// install every member's before images in one pass, in reverse global LSN
// order, logging each installation, (3) release locks, drop dependencies,
// and finalize statuses. Caller holds m.mu.
//
// A prepared transaction is exempt: its fate belongs to the coordinator,
// so every unilateral path — watchdog, context expiry, lease teardown,
// Close, cascades reaching it — is a silent no-op here. Only the verdict
// path (Decide, failPrepareLocked) passes includePrepared.
func (m *Manager) abortLocked(t *txn, reason error) {
	m.abortCascadeLocked(t, reason, false)
}

func (m *Manager) abortCascadeLocked(t *txn, reason error, includePrepared bool) {
	if t.st() == xid.StatusPrepared && !includePrepared {
		return
	}
	// Abort-cause accounting happens here so every path — lock-wait
	// victims, commit-wait victims, the OnVictim callback, the watchdog,
	// context watchers — is counted exactly once (per cascade root).
	if !t.st().Terminated() && t.st() != xid.StatusAborting {
		switch {
		case errors.Is(reason, ErrDeadlock):
			m.stats.deadlocks.Add(1)
		case errors.Is(reason, ErrTxnDeadline):
			m.stats.reaped.Add(1)
		case errors.Is(reason, context.DeadlineExceeded):
			m.stats.expired.Add(1)
		case errors.Is(reason, context.Canceled):
			m.stats.cancelled.Add(1)
		}
	}
	// Phase 1: close the cascade set over AD/GC/BD incoming edges.
	var set []*txn
	work := []*txn{t}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		if u.st().Terminated() || u.st() == xid.StatusAborting ||
			(u.st() == xid.StatusPrepared && !includePrepared) {
			continue
		}
		// abErr strictly before the status store: lock-free readers that
		// observe the aborting status must also observe the reason.
		u.abErr = reason
		u.setSt(xid.StatusAborting)
		u.closeAbort()
		// Doom before cancelling waits: a dying transaction attracts no
		// wait-graph edges, so detectors racing this teardown cannot select
		// a second victim for a cycle the abort is already breaking.
		m.waits.Doom(u.id)
		m.locks.CancelWaits(u.id)
		set = append(set, u)
		for _, e := range m.deps.Incoming(u.id) {
			if e.Types.Has(xid.DepAD) || e.Types.Has(xid.DepGC) || e.Types.Has(xid.DepBD) {
				if dep, ok := m.txns.Get(uint64(e.Other)); ok {
					work = append(work, dep)
				}
			}
		}
	}
	if len(set) == 0 {
		return
	}
	// Phase 2: undo all updates of the set in reverse global order. Per the
	// paper's caveat, later updates by permitted cooperating transactions —
	// inside or outside the set — are overwritten too; each installation is
	// logged so recovery reproduces exactly this state.
	var undos []struct {
		tid xid.TID
		rec undoRec
	}
	for _, u := range set {
		for _, rec := range u.undo {
			undos = append(undos, struct {
				tid xid.TID
				rec undoRec
			}{u.id, rec})
		}
		u.undo = nil
		// An aborted in-doubt member's withheld images simply vanish; there
		// is nothing in the cache to roll back.
		u.redo = nil
	}
	sort.Slice(undos, func(i, j int) bool { return undos[i].rec.lsn > undos[j].rec.lsn })
	for _, ur := range undos {
		rec := ur.rec
		switch rec.kind {
		case wal.KindDelta:
			// Logical undo: add the negated delta, leaving concurrent
			// committed increments intact.
			neg := wal.EncodeCounter(-wal.DecodeCounter(rec.before))
			m.log.Append(&wal.Record{Type: wal.TUndo, TID: ur.tid, OID: rec.oid, Kind: wal.KindDelta, After: neg})
			if obj := m.cache.Object(rec.oid); obj != nil {
				obj.Lat.Lock()
				obj.SetData(wal.EncodeCounter(wal.DecodeCounter(obj.Data()) + wal.DecodeCounter(neg)))
				obj.Lat.Unlock()
				m.dirty[rec.oid] = dirtyUpsert
			}
		case wal.KindCreate:
			m.log.Append(&wal.Record{Type: wal.TUndo, TID: ur.tid, OID: rec.oid, Kind: wal.KindDelete})
			m.cache.Delete(rec.oid)
			m.dirty[rec.oid] = dirtyDelete
			// The object never existed; any escrow bounds declared for it
			// (a rolled-back bounded-counter creation) go with it.
			m.locks.DropEscrow(rec.oid)
		case wal.KindDelete:
			m.log.Append(&wal.Record{Type: wal.TUndo, TID: ur.tid, OID: rec.oid, Kind: wal.KindCreate, After: rec.before})
			m.cache.Install(rec.oid, rec.before)
			m.dirty[rec.oid] = dirtyUpsert
		default: // modify
			m.log.Append(&wal.Record{Type: wal.TUndo, TID: ur.tid, OID: rec.oid, Kind: wal.KindModify, After: rec.before})
			m.cache.Install(rec.oid, rec.before)
			m.dirty[rec.oid] = dirtyUpsert
		}
	}
	// Phase 3: cleanup and final statuses.
	for _, u := range set {
		m.log.Append(&wal.Record{Type: wal.TAbort, TID: u.id})
		m.deps.RemoveNode(u.id)
		m.locks.ReleaseAll(u.id)
		m.waits.RemoveNode(u.id)
		m.releaseSlot(u)
		u.setSt(xid.StatusAborted)
		m.live.Add(-1)
		m.stats.aborts.Add(1)
		u.closeDone()
		u.closeTerm()
		if m.cfg.ReapTerminated {
			m.txns.Delete(uint64(u.id))
		}
	}
	m.cond.Broadcast()
}
