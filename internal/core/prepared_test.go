package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// completed initiates and begins fn and waits for the body to finish, so
// the transaction sits in the completed state, ready to prepare.
func completed(t *testing.T, m *Manager, fn TxnFunc) xid.TID {
	t.Helper()
	id := initiated(t, m, fn)
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestPrepareDecideCommit(t *testing.T) {
	m := newMem(t)
	var oids [2]xid.OID
	var ids [2]xid.TID
	for i := range ids {
		i := i
		ids[i] = completed(t, m, func(tx *Tx) error {
			oid, err := tx.Create([]byte{byte(i)})
			oids[i] = oid
			return err
		})
	}
	if err := m.FormDependency(xid.DepGC, ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	// Preparing one member must pull in its whole GC closure.
	if err := m.PrepareCtx(context.Background(), 42, ids[0]); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for _, id := range ids {
		if got := m.StatusOf(id); got != xid.StatusPrepared {
			t.Fatalf("%v status = %v, want prepared", id, got)
		}
	}
	// Prepared transactions refuse unilateral termination.
	if err := m.Abort(ids[0]); !errors.Is(err, ErrPrepared) {
		t.Fatalf("Abort on prepared = %v, want ErrPrepared", err)
	}
	if err := m.Commit(ids[1]); !errors.Is(err, ErrPrepared) {
		t.Fatalf("Commit on prepared = %v, want ErrPrepared", err)
	}
	other := initiated(t, m, noop)
	if err := m.FormDependency(xid.DepGC, ids[0], other); !errors.Is(err, ErrPrepared) {
		t.Fatalf("GC onto prepared = %v, want ErrPrepared", err)
	}
	// A duplicated prepare of the same gid is an ack, not an error.
	if err := m.PrepareCtx(context.Background(), 42, ids[1]); err != nil {
		t.Fatalf("duplicate prepare: %v", err)
	}
	if got := m.InDoubt(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("InDoubt = %v, want [42]", got)
	}
	if err := m.Decide(42, true); err != nil {
		t.Fatalf("decide: %v", err)
	}
	for _, id := range ids {
		if got := m.StatusOf(id); got != xid.StatusCommitted {
			t.Fatalf("%v status = %v, want committed", id, got)
		}
	}
	if m.Cache().Len() != 2 {
		t.Fatalf("cache len = %d, want 2", m.Cache().Len())
	}
	// The verdict is idempotent; the opposite verdict is rejected; a
	// retransmitted vote reports the outcome.
	if err := m.Decide(42, true); err != nil {
		t.Fatalf("duplicate decide: %v", err)
	}
	if err := m.Decide(42, false); err == nil {
		t.Fatal("contradictory decide succeeded")
	}
	if err := m.PrepareCtx(context.Background(), 42, ids[0]); !errors.Is(err, ErrAlreadyCommitted) {
		t.Fatalf("prepare after commit verdict = %v, want ErrAlreadyCommitted", err)
	}
	if err := m.Decide(7, true); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("decide unknown gid = %v, want ErrUnknownGroup", err)
	}
}

func TestPrepareDecideAbort(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("orig"))
	id := completed(t, m, func(tx *Tx) error {
		return tx.Write(oid, []byte("new"))
	})
	if err := m.PrepareCtx(context.Background(), 5, id); err != nil {
		t.Fatal(err)
	}
	if err := m.Decide(5, false); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(id); got != xid.StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}
	var data []byte
	runTxn(t, m, func(tx *Tx) error {
		var err error
		data, err = tx.Read(oid)
		return err
	})
	if !bytes.Equal(data, []byte("orig")) {
		t.Fatalf("object = %q, want rolled back to orig", data)
	}
	if err := m.Decide(5, false); err != nil {
		t.Fatalf("duplicate abort verdict: %v", err)
	}
	if err := m.PrepareCtx(context.Background(), 5, id); !errors.Is(err, ErrAborted) {
		t.Fatalf("prepare after abort verdict = %v, want ErrAborted", err)
	}
}

// TestDecideDuplicateConcurrent races duplicate commit verdicts against
// the group-commit flush window: commitPreparedLocked releases the
// manager mutex around the log force, and a concurrent duplicate Decide
// (a coordinator delivery retry racing a restarted participant's
// ResolveInDoubt) must park on the verdict gate instead of re-running
// the commit epilogue — which would append a second commit record,
// double-count stats, and drive the live counter negative.
func TestDecideDuplicateConcurrent(t *testing.T) {
	m, err := Open(Config{BatchedCommits: true, CommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ids := [2]xid.TID{
		completed(t, m, func(tx *Tx) error { _, err := tx.Create([]byte("a")); return err }),
		completed(t, m, func(tx *Tx) error { _, err := tx.Create([]byte("b")); return err }),
	}
	if err := m.FormDependency(xid.DepGC, ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := m.PrepareCtx(context.Background(), 77, ids[0]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = m.Decide(77, true)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
	}
	for _, id := range ids {
		if got := m.StatusOf(id); got != xid.StatusCommitted {
			t.Fatalf("%v status = %v, want committed", id, got)
		}
	}
	if got := m.Stats().Commits; got != 2 {
		t.Fatalf("commits = %d, want 2 (duplicate verdicts re-ran the epilogue)", got)
	}
	// A corrupted live counter would wedge or trip the Close drain check.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVerdictRetention bounds the decided-groups memory: beyond the cap
// the oldest verdicts are forgotten, and a duplicate verdict for a
// forgotten group reports ErrUnknownGroup — which coordinators treat as
// already delivered.
func TestVerdictRetention(t *testing.T) {
	m, err := Open(Config{VerdictRetention: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	gids := []uint64{101, 102, 103}
	for _, gid := range gids {
		id := completed(t, m, noop)
		if err := m.PrepareCtx(context.Background(), gid, id); err != nil {
			t.Fatal(err)
		}
		if err := m.Decide(gid, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Decide(101, true); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("pruned verdict redelivery = %v, want ErrUnknownGroup", err)
	}
	if err := m.Decide(102, true); err != nil {
		t.Fatalf("retained verdict redelivery: %v", err)
	}
	if err := m.Decide(103, true); err != nil {
		t.Fatalf("retained verdict redelivery: %v", err)
	}
}

func TestPrepareVotesNoOnAbortedMember(t *testing.T) {
	m := newMem(t)
	a := completed(t, m, noop)
	b := completed(t, m, noop)
	if err := m.FormDependency(xid.DepGC, a, b); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(a); err != nil {
		t.Fatal(err)
	}
	if err := m.PrepareCtx(context.Background(), 3, b); !errors.Is(err, ErrAborted) {
		t.Fatalf("prepare with aborted member = %v, want ErrAborted", err)
	}
	if got := m.StatusOf(b); got != xid.StatusAborted {
		t.Fatalf("b status = %v, want aborted (no vote cleans up)", got)
	}
	if got := m.InDoubt(); len(got) != 0 {
		t.Fatalf("InDoubt = %v, want empty", got)
	}
}

func TestPrepareWaitsForRunningMember(t *testing.T) {
	m := newMem(t)
	release := make(chan struct{})
	id := initiated(t, m, func(tx *Tx) error {
		<-release
		_, err := tx.Create([]byte("x"))
		return err
	})
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.PrepareCtx(context.Background(), 8, id) }()
	select {
	case err := <-done:
		t.Fatalf("prepare returned %v before the body completed", err)
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := m.Decide(8, true); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareSurvivesCrash is the participant half of recovery: a prepared
// group survives restart in doubt — updates withheld, locks held — until
// the verdict arrives, in either direction, across multiple restarts.
func TestPrepareSurvivesCrash(t *testing.T) {
	mfs := faultfs.NewMem()
	cfg := Config{Dir: "db", SyncCommits: true, FS: mfs}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var obj xid.OID
	counter := seedCounter(t, m, 10)
	id := completed(t, m, func(tx *Tx) error {
		if err := tx.Add(counter, 5); err != nil {
			return err
		}
		var err error
		obj, err = tx.Create([]byte("payload"))
		return err
	})
	if err := m.PrepareCtx(context.Background(), 11, id); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: still in doubt, updates invisible, but durable.
	m, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.InDoubt(); len(got) != 1 || got[0] != 11 {
		t.Fatalf("InDoubt after restart = %v, want [11]", got)
	}
	// Observe through the cache: a locked read would (correctly) block on
	// the in-doubt member's increment lock.
	if v := counterValue(t, m, counter); v != 10 {
		t.Fatalf("counter while in doubt = %d, want 10", v)
	}
	if _, ok := m.Cache().Read(obj); ok {
		t.Fatal("in-doubt create leaked into the cache")
	}
	// An in-doubt member is pinned: its writes are re-locked, so a writer
	// conflicts, but commutative increments still flow past the counter.
	runTxn(t, m, func(tx *Tx) error { return tx.Add(counter, 1) })
	if err := m.Decide(11, true); err != nil {
		t.Fatalf("decide after restart: %v", err)
	}
	if v := counterValue(t, m, counter); v != 16 {
		t.Fatalf("counter after verdict = %d, want 16", v)
	}
	if data, ok := m.Cache().Read(obj); !ok || !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("in-doubt create after verdict = %q/%v, want payload", data, ok)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: the verdict commit is durable.
	m, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.InDoubt(); len(got) != 0 {
		t.Fatalf("InDoubt after decided restart = %v, want empty", got)
	}
	if v := counterValue(t, m, counter); v != 16 {
		t.Fatalf("counter after second restart = %d, want 16", v)
	}
}

func TestPrepareCrashThenAbortVerdict(t *testing.T) {
	mfs := faultfs.NewMem()
	cfg := Config{Dir: "db", SyncCommits: true, FS: mfs}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oid := seedObject(t, m, []byte("keep"))
	id := completed(t, m, func(tx *Tx) error {
		return tx.Write(oid, []byte("doomed"))
	})
	if err := m.PrepareCtx(context.Background(), 4, id); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Decide(4, false); err != nil {
		t.Fatal(err)
	}
	var data []byte
	runTxn(t, m, func(tx *Tx) error {
		var err error
		data, err = tx.Read(oid)
		return err
	})
	if !bytes.Equal(data, []byte("keep")) {
		t.Fatalf("object = %q, want keep", data)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.InDoubt(); len(got) != 0 {
		t.Fatalf("InDoubt after abort verdict restart = %v, want empty", got)
	}
	runTxn(t, m, func(tx *Tx) error {
		var err error
		data, err = tx.Read(oid)
		return err
	})
	if !bytes.Equal(data, []byte("keep")) {
		t.Fatalf("object after restart = %q, want keep", data)
	}
}
