package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/xid"
)

// TestDelegateCommitResponsibility: updates delegated from ti to tj are
// committed iff tj commits, even though ti performed them (§2.2).
func TestDelegateCommitResponsibility(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("base"))
	worker := initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte("worked")) })
	holder := initiated(t, m, noop)
	m.Begin(worker, holder)
	m.Wait(worker)
	m.Wait(holder)
	if err := m.Delegate(worker, holder); err != nil {
		t.Fatal(err)
	}
	// The worker aborting no longer undoes the delegated write.
	if err := m.Abort(worker); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Cache().Read(oid)
	if string(got) != "worked" {
		t.Fatalf("delegated write undone by delegator's abort: %q", got)
	}
	if err := m.Commit(holder); err != nil {
		t.Fatal(err)
	}
	got, _ = m.Cache().Read(oid)
	if string(got) != "worked" {
		t.Fatalf("after commit: %q", got)
	}
}

// TestDelegateAbortResponsibility: if the delegatee aborts, the delegated
// updates are undone.
func TestDelegateAbortResponsibility(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("base"))
	worker := initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte("worked")) })
	holder := initiated(t, m, noop)
	m.Begin(worker, holder)
	m.Wait(worker)
	m.Wait(holder)
	m.Delegate(worker, holder)
	if err := m.Commit(worker); err != nil { // commits nothing: all delegated
		t.Fatal(err)
	}
	if err := m.Abort(holder); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Cache().Read(oid)
	if string(got) != "base" {
		t.Fatalf("delegatee abort did not undo delegated write: %q", got)
	}
}

// TestDelegateSubset: only the named objects move.
func TestDelegateSubset(t *testing.T) {
	m := newMem(t)
	a := seedObject(t, m, []byte("a0"))
	b := seedObject(t, m, []byte("b0"))
	worker := initiated(t, m, func(tx *Tx) error {
		if err := tx.Write(a, []byte("a1")); err != nil {
			return err
		}
		return tx.Write(b, []byte("b1"))
	})
	holder := initiated(t, m, noop)
	m.Begin(worker, holder)
	m.Wait(worker)
	m.Wait(holder)
	if err := m.Delegate(worker, holder, a); err != nil {
		t.Fatal(err)
	}
	m.Abort(worker) // undoes only b
	va, _ := m.Cache().Read(a)
	vb, _ := m.Cache().Read(b)
	if string(va) != "a1" || string(vb) != "b0" {
		t.Fatalf("a=%q b=%q; want a1/b0", va, vb)
	}
	if err := m.Commit(holder); err != nil {
		t.Fatal(err)
	}
}

// TestDelegateToInitiated: the paper separates initiation from beginning so
// one can delegate to a transaction before it begins.
func TestDelegateToInitiated(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("base"))
	worker := initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte("split-work")) })
	m.Begin(worker)
	m.Wait(worker)
	later := initiated(t, m, noop) // not begun
	if err := m.Delegate(worker, later); err != nil {
		t.Fatal(err)
	}
	m.Begin(later)
	if err := m.Commit(later); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Cache().Read(oid)
	if string(got) != "split-work" {
		t.Fatalf("got %q", got)
	}
}

func TestDelegateTerminatedFails(t *testing.T) {
	m := newMem(t)
	done := runTxn(t, m, noop)
	live := initiated(t, m, noop)
	if err := m.Delegate(done, live); !errors.Is(err, ErrTerminated) {
		t.Fatalf("delegate from committed = %v", err)
	}
	if err := m.Delegate(live, done); !errors.Is(err, ErrTerminated) {
		t.Fatalf("delegate to committed = %v", err)
	}
}

// TestPermitCooperation reproduces §3.2.1: two transactions ping-pong
// conflicting writes on one object via permits, with a CD so the permitted
// transaction cannot commit first.
func TestPermitCooperation(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte{0})
	tiWrote := make(chan struct{})
	tjWrote := make(chan struct{})
	tiDone := make(chan struct{})

	ti := initiated(t, m, func(tx *Tx) error {
		if err := tx.Update(oid, func(b []byte) []byte { b[0] += 1; return b }); err != nil {
			return err
		}
		// Allow tj to write concurrently.
		if err := m.Permit(tx.ID(), 0, []xid.OID{oid}, xid.OpAll); err != nil {
			return err
		}
		close(tiWrote)
		<-tjWrote
		// tj permitted us back; we can write again.
		if err := tx.Update(oid, func(b []byte) []byte { b[0] += 10; return b }); err != nil {
			return err
		}
		close(tiDone)
		return nil
	})
	tj := initiated(t, m, func(tx *Tx) error {
		<-tiWrote
		if err := tx.Update(oid, func(b []byte) []byte { b[0] += 100; return b }); err != nil {
			return err
		}
		if err := m.Permit(tx.ID(), ti, []xid.OID{oid}, xid.OpAll); err != nil {
			return err
		}
		close(tjWrote)
		<-tiDone
		return nil
	})
	if err := m.FormDependency(xid.DepCD, ti, tj); err != nil {
		t.Fatal(err)
	}
	m.Begin(ti, tj)
	if err := m.Commit(ti); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tj); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Cache().Read(oid)
	if got[0] != 111 {
		t.Fatalf("cooperative result = %d, want 111", got[0])
	}
}

// TestPermitCooperationAbortCascade: per the paper's caveat, if the first
// cooperating transaction aborts, its before-images clobber the permitted
// partner's later writes; an AD dependency makes the partner abort too,
// keeping the pair consistent.
func TestPermitCooperationAbortCascade(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("v0"))
	tiWrote := make(chan struct{})
	tjWrote := make(chan struct{})
	hold := make(chan struct{})
	ti := initiated(t, m, func(tx *Tx) error {
		if err := tx.Write(oid, []byte("ti")); err != nil {
			return err
		}
		m.Permit(tx.ID(), 0, []xid.OID{oid}, xid.OpAll)
		close(tiWrote)
		<-hold
		return nil
	})
	tj := initiated(t, m, func(tx *Tx) error {
		<-tiWrote
		if err := tx.Write(oid, []byte("tj")); err != nil {
			return err
		}
		close(tjWrote)
		<-hold
		return nil
	})
	m.FormDependency(xid.DepAD, ti, tj)
	m.Begin(ti, tj)
	<-tjWrote
	if err := m.Abort(ti); err != nil {
		t.Fatal(err)
	}
	close(hold)
	if m.StatusOf(tj) != xid.StatusAborted {
		t.Fatal("AD partner not aborted")
	}
	got, _ := m.Cache().Read(oid)
	if string(got) != "v0" {
		t.Fatalf("object = %q, want v0 (ti's before image, then tj had nothing left)", got)
	}
}

// TestCursorStabilityPermit reproduces §3.2.2: after reading a record, the
// reader permits any transaction to write it without waiting.
func TestCursorStabilityPermit(t *testing.T) {
	m := newMem(t)
	rec := seedObject(t, m, []byte("row1"))
	readDone := make(chan struct{})
	hold := make(chan struct{})
	reader := initiated(t, m, func(tx *Tx) error {
		if _, err := tx.Read(rec); err != nil {
			return err
		}
		// Cursor moves on: permit(ti, record, write).
		if err := m.Permit(tx.ID(), 0, []xid.OID{rec}, xid.OpWrite); err != nil {
			return err
		}
		close(readDone)
		<-hold // long-running reader
		return nil
	})
	m.Begin(reader)
	<-readDone
	// A writer proceeds without waiting for the reader to commit.
	writer := initiated(t, m, func(tx *Tx) error { return tx.Write(rec, []byte("row1'")) })
	m.Begin(writer)
	commitErr := make(chan error, 1)
	go func() { commitErr <- m.Commit(writer) }()
	select {
	case err := <-commitErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer blocked despite cursor-stability permit")
	}
	close(hold)
	if err := m.Commit(reader); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Cache().Read(rec)
	if string(got) != "row1'" {
		t.Fatalf("record = %q", got)
	}
}

func TestPermitFromTerminatedFails(t *testing.T) {
	m := newMem(t)
	done := runTxn(t, m, noop)
	live := initiated(t, m, noop)
	if err := m.Permit(done, live, nil, 0); !errors.Is(err, ErrTerminated) {
		t.Fatalf("permit from committed = %v", err)
	}
}

// TestNestedPattern is the paper's §3.1.4 trip example built directly from
// primitives: parent permits child, waits, delegates child's work to
// itself, and aborts the whole transaction if a child fails.
func TestNestedPattern(t *testing.T) {
	m := newMem(t)
	flight := seedObject(t, m, []byte("no-flight"))
	hotel := seedObject(t, m, []byte("no-hotel"))

	trip := func(tx *Tx) error {
		man := tx.Manager()
		book := func(oid xid.OID, val string) error {
			child, err := tx.Initiate(func(c *Tx) error { return c.Write(oid, []byte(val)) })
			if err != nil {
				return err
			}
			if err := man.Permit(tx.ID(), child, nil, 0); err != nil {
				return err
			}
			if err := man.Begin(child); err != nil {
				return err
			}
			if err := man.Wait(child); err != nil {
				return err
			}
			if err := man.Delegate(child, tx.ID()); err != nil {
				return err
			}
			return man.Commit(child)
		}
		if err := book(flight, "AA-123"); err != nil {
			return err
		}
		return book(hotel, "Equator")
	}
	id := initiated(t, m, trip)
	m.Begin(id)
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Cache().Read(flight)
	h, _ := m.Cache().Read(hotel)
	if string(f) != "AA-123" || string(h) != "Equator" {
		t.Fatalf("flight=%q hotel=%q", f, h)
	}
}

// TestNestedPatternChildFailure: the failing hotel child aborts the parent,
// and the already-delegated flight update is rolled back with it.
func TestNestedPatternChildFailure(t *testing.T) {
	m := newMem(t)
	flight := seedObject(t, m, []byte("no-flight"))

	trip := func(tx *Tx) error {
		man := tx.Manager()
		child, err := tx.Initiate(func(c *Tx) error { return c.Write(flight, []byte("AA-123")) })
		if err != nil {
			return err
		}
		man.Permit(tx.ID(), child, nil, 0)
		man.Begin(child)
		if err := man.Wait(child); err != nil {
			return err
		}
		if err := man.Delegate(child, tx.ID()); err != nil {
			return err
		}
		if err := man.Commit(child); err != nil {
			return err
		}
		// Hotel reservation fails: abort self (paper: abort(self())).
		hotel, _ := tx.Initiate(func(c *Tx) error { return errors.New("sold out") })
		man.Permit(tx.ID(), hotel, nil, 0)
		man.Begin(hotel)
		if err := man.Wait(hotel); err != nil {
			return err // aborts the parent
		}
		return nil
	}
	id := initiated(t, m, trip)
	m.Begin(id)
	if err := m.Commit(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit = %v, want ErrAborted", err)
	}
	f, _ := m.Cache().Read(flight)
	if string(f) != "no-flight" {
		t.Fatalf("flight = %q, want rollback", f)
	}
}
