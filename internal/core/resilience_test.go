package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xid"
)

// mustCreate commits a fresh object and returns its oid.
func mustCreate(t *testing.T, m *Manager, data []byte) xid.OID {
	t.Helper()
	var oid xid.OID
	id, err := m.Initiate(func(tx *Tx) error {
		var err error
		oid, err = tx.Create(data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
	return oid
}

// waitStatus spins until id reaches st or the deadline passes.
func waitStatus(t *testing.T, m *Manager, id xid.TID, st xid.Status) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.StatusOf(id) != st {
		if time.Now().After(deadline) {
			t.Fatalf("txn %v never reached %v (is %v)", id, st, m.StatusOf(id))
		}
		time.Sleep(time.Millisecond)
	}
}

// waitInvariants spins until the lock table's invariants hold. An aborted
// waiter's pending request lingers until its parked goroutine wakes and
// dequeues itself (cancelled entries are skipped by grant scans in the
// meantime), so checks immediately after an abort must allow that beat.
func waitInvariants(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		bad := m.LockManager().CheckInvariants()
		if len(bad) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock invariants violated: %v", bad)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchdogReapsDeadline: a transaction that outlives Config.TxnDeadline
// is aborted by the reaper with ErrTxnDeadline, and the reap is counted.
func TestWatchdogReapsDeadline(t *testing.T) {
	m, err := Open(Config{TxnDeadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	id, _ := m.Initiate(func(tx *Tx) error {
		<-release
		return nil
	})
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = m.Commit(id)
	if !errors.Is(err, ErrTxnDeadline) || !errors.Is(err, ErrAborted) {
		t.Fatalf("commit returned %v, want ErrTxnDeadline wrapping ErrAborted", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("reap took %v", d)
	}
	if s := m.Stats(); s.Reaped != 1 {
		t.Fatalf("Reaped = %d, want 1", s.Reaped)
	}
}

// TestTxnOptionsDeadlineOverride: a per-transaction deadline works without
// any Config.TxnDeadline, and a negative override disables the config one.
func TestTxnOptionsDeadlineOverride(t *testing.T) {
	m, err := Open(Config{TxnDeadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Deadline < 0 disables the watchdog for this transaction: it
	// outlives the config deadline comfortably.
	id, _ := m.InitiateWith(func(tx *Tx) error {
		time.Sleep(80 * time.Millisecond)
		return nil
	}, TxnOptions{Deadline: -1})
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(id); err != nil {
		t.Fatalf("deadline-exempt txn aborted: %v", err)
	}
}

// TestBeginCtxCancelWhileBlockedOnLock is the core acceptance path:
// cancelling the bound context while the transaction is blocked on a lock
// returns within 100ms with the transaction aborted, its locks released,
// and no wait-graph edges left behind.
func TestBeginCtxCancelWhileBlockedOnLock(t *testing.T) {
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	oid := mustCreate(t, m, []byte{1})
	release := make(chan struct{})
	holder, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Lock(oid, xid.OpWrite); err != nil {
			return err
		}
		<-release
		return nil
	})
	if err := m.Begin(holder); err != nil {
		t.Fatal(err)
	}
	for !m.LockManager().Holds(holder, oid, xid.OpWrite) {
		time.Sleep(time.Millisecond)
	}
	blockedAt := make(chan struct{})
	blocked, _ := m.Initiate(func(tx *Tx) error {
		close(blockedAt)
		return tx.Lock(oid, xid.OpWrite)
	})
	ctx, cancel := context.WithCancel(context.Background())
	if err := m.BeginCtx(ctx, blocked); err != nil {
		t.Fatal(err)
	}
	<-blockedAt
	// Give the lock request time to actually park on the shard cond.
	for len(m.WaitGraph().Waiters()) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	start := time.Now()
	err = m.Commit(blocked)
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Fatalf("cancel took %v to unblock, want <100ms", took)
	}
	if !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("commit returned %v, want ErrAborted wrapping context.Canceled", err)
	}
	waitStatus(t, m, blocked, xid.StatusAborted)
	if ws := m.WaitGraph().Waiters(); len(ws) != 0 {
		t.Fatalf("wait-graph edges left: %v", ws)
	}
	waitInvariants(t, m)
	if s := m.Stats(); s.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", s.Cancelled)
	}
	close(release)
	if err := m.Commit(holder); err != nil {
		t.Fatalf("holder commit: %v", err)
	}
}

// TestCommitCtxCancelDuringDependencyWait: a commit driver parked on a CD
// obstacle is woken by its context and converts the wait into a clean
// abort.
func TestCommitCtxCancelDuringDependencyWait(t *testing.T) {
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	release := make(chan struct{})
	sup, _ := m.Initiate(func(tx *Tx) error {
		<-release
		return nil
	})
	dep, _ := m.Initiate(func(tx *Tx) error { return nil })
	if err := m.Begin(sup, dep); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(dep); err != nil {
		t.Fatal(err)
	}
	if err := m.FormDependency(xid.DepCD, sup, dep); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- m.CommitCtx(ctx, dep) }()
	// Let the driver park on the obstacle, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
			t.Fatalf("CommitCtx returned %v, want abort wrapping context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("CommitCtx did not return after cancel")
	}
	waitStatus(t, m, dep, xid.StatusAborted)
	close(release)
	if err := m.Commit(sup); err != nil {
		t.Fatalf("supporter commit: %v", err)
	}
}

// TestAdmissionControlShedsAndRecovers: with MaxLive=1 and no queueing
// budget, a second begin sheds with ErrOverload; once the first
// transaction terminates, its slot is reusable.
func TestAdmissionControlShedsAndRecovers(t *testing.T) {
	m, err := Open(Config{MaxLive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	release := make(chan struct{})
	first, _ := m.Initiate(func(tx *Tx) error {
		<-release
		return nil
	})
	if err := m.Begin(first); err != nil {
		t.Fatal(err)
	}
	second, _ := m.Initiate(func(tx *Tx) error { return nil })
	err = m.Begin(second)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("begin under overload returned %v, want ErrOverload", err)
	}
	waitStatus(t, m, second, xid.StatusAborted)
	if s := m.Stats(); s.Overloads != 1 {
		t.Fatalf("Overloads = %d, want 1", s.Overloads)
	}
	close(release)
	if err := m.Commit(first); err != nil {
		t.Fatal(err)
	}
	third, _ := m.Initiate(func(tx *Tx) error { return nil })
	if err := m.Begin(third); err != nil {
		t.Fatalf("slot not released after commit: %v", err)
	}
	if err := m.Commit(third); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionQueueingAdmitsWhenSlotFrees: with a queueing budget, a
// begin that finds the gate full waits and is admitted once a slot frees.
func TestAdmissionQueueingAdmitsWhenSlotFrees(t *testing.T) {
	m, err := Open(Config{MaxLive: 1, AdmitTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	release := make(chan struct{})
	first, _ := m.Initiate(func(tx *Tx) error {
		<-release
		return nil
	})
	if err := m.Begin(first); err != nil {
		t.Fatal(err)
	}
	second, _ := m.Initiate(func(tx *Tx) error { return nil })
	res := make(chan error, 1)
	go func() { res <- m.Begin(second) }()
	time.Sleep(20 * time.Millisecond) // park in the admission queue
	close(release)
	if err := m.Commit(first); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("queued begin returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued begin never admitted")
	}
	if err := m.Commit(second); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Overloads != 0 {
		t.Fatalf("Overloads = %d, want 0 (the wait was within budget)", s.Overloads)
	}
}

// TestCloseUnderLoad is the graceful-shutdown regression: Close must wake
// transactions parked on lock-shard conds, dependency obstacles, and the
// admission queue, aborting them with reasons wrapping ErrClosed, and must
// drain the watchdog.
func TestCloseUnderLoad(t *testing.T) {
	// MaxLive covers the holder, the 3 lock waiters, and the 2 dependency
	// waiters exactly, so the last 3 transactions queue at the gate.
	m, err := Open(Config{TxnDeadline: time.Hour, MaxLive: 6, AdmitTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	oid := mustCreate(t, m, []byte{1})
	release := make(chan struct{})
	defer close(release)
	// One transaction holds the lock and never finishes.
	holder, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Lock(oid, xid.OpWrite); err != nil {
			return err
		}
		<-release
		return nil
	})
	if err := m.Begin(holder); err != nil {
		t.Fatal(err)
	}
	for !m.LockManager().Holds(holder, oid, xid.OpWrite) {
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	// Three transactions block on the held lock.
	for i := 0; i < 3; i++ {
		id, _ := m.Initiate(func(tx *Tx) error { return tx.Lock(oid, xid.OpWrite) })
		if err := m.Begin(id); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, id xid.TID) {
			defer wg.Done()
			errs[i] = m.Commit(id)
		}(i, id)
	}
	// Two commit drivers block on a CD obstacle (the holder).
	for i := 3; i < 5; i++ {
		id, _ := m.Initiate(func(tx *Tx) error { return nil })
		if err := m.Begin(id); err != nil {
			t.Fatal(err)
		}
		if err := m.Wait(id); err != nil {
			t.Fatal(err)
		}
		if err := m.FormDependency(xid.DepCD, holder, id); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, id xid.TID) {
			defer wg.Done()
			errs[i] = m.Commit(id)
		}(i, id)
	}
	// Three transactions queue at the admission gate (all 6 slots held).
	for i := 5; i < 8; i++ {
		id, _ := m.Initiate(func(tx *Tx) error { return nil })
		wg.Add(1)
		go func(i int, id xid.TID) {
			defer wg.Done()
			if err := m.Begin(id); err != nil {
				errs[i] = err
				return
			}
			errs[i] = m.Commit(id)
		}(i, id)
	}
	time.Sleep(50 * time.Millisecond) // let everyone park
	done := make(chan error, 1)
	go func() { done <- m.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung under load")
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrAborted) {
			t.Fatalf("waiter %d returned %v, want ErrClosed/ErrAborted", i, err)
		}
	}
	for _, info := range m.Transactions() {
		if !info.Status.Terminated() {
			t.Fatalf("txn %v leaked in %v after Close", info.ID, info.Status)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := m.Initiate(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("initiate after Close: %v", err)
	}
}

// TestRunRetriesThreeWayDeadlock: three transactions lock {X,Y}, {Y,Z},
// {Z,X} in orders that deadlock in the first round; Run drives all three
// to completion with no manual intervention.
func TestRunRetriesThreeWayDeadlock(t *testing.T) {
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	oids := []xid.OID{
		mustCreate(t, m, []byte{0}),
		mustCreate(t, m, []byte{0}),
		mustCreate(t, m, []byte{0}),
	}
	var arrived atomic.Int32
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			firstRound := true
			errs[w] = m.Run(context.Background(), RunOptions{MaxAttempts: 20}, func(tx *Tx) error {
				if err := tx.Lock(oids[w], xid.OpWrite); err != nil {
					return err
				}
				if firstRound {
					// Hold the first lock until all three workers hold
					// theirs, guaranteeing the 3-cycle forms once.
					firstRound = false
					arrived.Add(1)
					for arrived.Load() < 3 {
						time.Sleep(time.Millisecond)
					}
				}
				return tx.Lock(oids[(w+1)%3], xid.OpWrite)
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: Run failed: %v", w, err)
		}
	}
	s := m.Stats()
	if s.Deadlocks == 0 {
		t.Fatal("the workload never deadlocked; the test proves nothing")
	}
	if s.Retries == 0 {
		t.Fatal("Run never retried")
	}
	waitInvariants(t, m)
}

// TestRunClassification: terminal errors return immediately; errors
// tagged ErrRetryable burn the attempt budget and the give-up error is
// itself ErrRetryable.
func TestRunClassification(t *testing.T) {
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	terminal := errors.New("constraint violated")
	attempts := 0
	err = m.Run(context.Background(), RunOptions{MaxAttempts: 5}, func(tx *Tx) error {
		attempts++
		return terminal
	})
	if !errors.Is(err, terminal) {
		t.Fatalf("Run returned %v, want the terminal error", err)
	}
	if attempts != 1 {
		t.Fatalf("terminal error retried %d times", attempts)
	}
	attempts = 0
	err = m.Run(context.Background(), RunOptions{MaxAttempts: 3, BaseBackoff: time.Microsecond}, func(tx *Tx) error {
		attempts++
		return fmt.Errorf("transient glitch: %w", ErrRetryable)
	})
	if !errors.Is(err, ErrRetryable) {
		t.Fatalf("Run returned %v, want ErrRetryable", err)
	}
	if attempts != 3 {
		t.Fatalf("retryable error attempted %d times, want 3", attempts)
	}
	// A cancelled engagement context stops the loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Run(ctx, RunOptions{}, func(tx *Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with dead ctx returned %v", err)
	}
}

// TestWaitCtxSemantics: Manager.WaitCtx abandons the wait without touching
// the target; Tx.WaitCtx aborts the waiting transaction (it holds locks).
func TestWaitCtxSemantics(t *testing.T) {
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	release := make(chan struct{})
	slow, _ := m.Initiate(func(tx *Tx) error {
		<-release
		return nil
	})
	if err := m.Begin(slow); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.WaitCtx(ctx, slow); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx returned %v, want DeadlineExceeded", err)
	}
	if st := m.StatusOf(slow); st != xid.StatusRunning {
		t.Fatalf("outside WaitCtx changed target status to %v", st)
	}
	// Tx.WaitCtx: the waiter aborts when its wait context dies.
	waiterErr := make(chan error, 1)
	waiter, _ := m.Initiate(func(tx *Tx) error {
		wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer wcancel()
		err := tx.WaitCtx(wctx, slow)
		waiterErr <- err
		return err
	})
	if err := m.Begin(waiter); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waiterErr:
		if !errors.Is(err, ErrAborted) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Tx.WaitCtx returned %v, want abort wrapping DeadlineExceeded", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Tx.WaitCtx never returned")
	}
	waitStatus(t, m, waiter, xid.StatusAborted)
	close(release)
	if err := m.Commit(slow); err != nil {
		t.Fatal(err)
	}
}
