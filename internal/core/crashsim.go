package core

import (
	"repro/internal/faultfs"
)

// CrashSim is a deterministic crash-simulation harness: it runs a
// workload against a manager whose durable files live on a
// fault-injected in-memory filesystem, freezes the file images at an
// injected crash point, and lets the caller reopen the database from
// the surviving image to assert recovery invariants.
//
// The sweep protocol:
//
//	n := sim.CountOps()                    // fault-free dry run
//	for at := 1; at <= n; at++ {
//	    mfs := sim.RunToCrash(at, tear)    // crash at the at'th fs op
//	    img := mfs.CrashImage(mode)        // what a reboot would find
//	    m, err := Open(Config{..., FS: img})
//	    ...assert invariants, close...
//	}
//
// Determinism requires a deterministic workload (sequential
// transactions, no data races on op ordering); then the dry run and
// every replay issue the same filesystem operation sequence, so crash
// point k always lands on the same operation.
type CrashSim struct {
	// Cfg configures the manager under test. Dir must be non-empty; FS
	// is installed by the harness.
	Cfg Config
	// Workload drives the manager. It must tolerate errors: once the
	// simulated crash fires, every filesystem operation fails, so
	// begins, commits and checkpoints after the crash point return
	// errors rather than hanging.
	Workload func(m *Manager)
}

// CountOps runs the workload with no faults injected and reports how
// many durability-relevant filesystem operations (writes, truncates,
// fsyncs) it issues end to end, including those of Open and Close.
// Crash points 1..n sweep every such operation.
func (s CrashSim) CountOps() int {
	mfs := faultfs.NewMem()
	s.runOn(mfs)
	return mfs.Ops()
}

// RunToCrash replays the workload with a crash injected at the
// crashAt'th durability-relevant operation (1-based). tear is the
// surviving byte prefix of the crashing write: -1 loses the write
// entirely, k >= 0 cuts it to its first k bytes (a torn sector).
// It returns the frozen filesystem; use CrashImage on it to materialize
// the state a rebooted machine would find under a given CrashMode.
func (s CrashSim) RunToCrash(crashAt, tear int) *faultfs.MemFS {
	mfs := faultfs.NewMem()
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpAny, Nth: crashAt, Action: faultfs.ActCrash, Keep: tear,
	}))
	s.runOn(mfs)
	return mfs
}

// RunWithScript replays the workload under an arbitrary fault script
// (for randomized fault torture) and returns the filesystem afterwards,
// with the script disarmed so the caller can reopen over it directly.
func (s CrashSim) RunWithScript(script *faultfs.Script) *faultfs.MemFS {
	mfs := faultfs.NewMem()
	mfs.SetScript(script)
	s.runOn(mfs)
	mfs.SetScript(nil)
	return mfs
}

// runOn opens the manager over fsys, runs the workload, and closes,
// swallowing errors: the injected fault can fire anywhere, including
// inside Open or Close.
func (s CrashSim) runOn(fsys *faultfs.MemFS) {
	cfg := s.Cfg
	cfg.FS = fsys
	m, err := Open(cfg)
	if err != nil {
		return
	}
	s.Workload(m)
	m.Close()
}
