package core

import (
	"errors"
	"testing"
	"time"
)

// TestEscrowBoundsRejectAdd: an Add whose delta can never fit the declared
// bounds fails with ErrEscrow (aborting the transaction), and the
// committed value is untouched.
func TestEscrowBoundsRejectAdd(t *testing.T) {
	m := newMem(t)
	oid := seedCounter(t, m, 5)
	runTxn(t, m, func(tx *Tx) error { return tx.DeclareEscrow(oid, 0, 10) })

	id, err := m.Initiate(func(tx *Tx) error { return tx.Add(oid, 100) })
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	m.Wait(id)
	if err := m.Commit(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit of over-bounds add: %v, want abort", err)
	}
	if v := counterValue(t, m, oid); v != 5 {
		t.Fatalf("counter = %d after rejected add, want 5", v)
	}

	// Within bounds still works.
	runTxn(t, m, func(tx *Tx) error { return tx.Add(oid, 4) })
	if v := counterValue(t, m, oid); v != 9 {
		t.Fatalf("counter = %d, want 9", v)
	}
}

// TestEscrowReaperFreesReservation: a watchdog-reaped transaction's
// in-flight escrow reservation is released with its locks, so a
// bounds-blocked Add by another transaction proceeds instead of waiting
// on a zombie.
func TestEscrowReaperFreesReservation(t *testing.T) {
	m, err := Open(Config{TxnDeadline: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	oid := seedCounter(t, m, 0)
	runTxn(t, m, func(tx *Tx) error { return tx.DeclareEscrow(oid, 0, 10) })

	hold := make(chan struct{})
	reserved := make(chan struct{})
	hog, err := m.Initiate(func(tx *Tx) error {
		if err := tx.Add(oid, 10); err != nil {
			return err
		}
		close(reserved)
		<-hold // outlive the deadline holding all the headroom
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(hog); err != nil {
		t.Fatal(err)
	}
	<-reserved

	// Bounds-blocked: 0 + 10 in flight + 1 > 10. Admittable only once the
	// hog's reservation goes — which the reaper must arrange. A generous
	// deadline override keeps this transaction out of the reaper's reach
	// while it waits for the hog's.
	done := make(chan error, 1)
	add, err := m.InitiateWith(func(tx *Tx) error { return tx.Add(oid, 1) },
		TxnOptions{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(add); err != nil {
		t.Fatal(err)
	}
	go func() { done <- m.Commit(add) }()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked add after reap: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("add still blocked: reaped transaction's reservation not released")
	}
	close(hold)
	if err := m.Commit(hog); !errors.Is(err, ErrTxnDeadline) {
		t.Fatalf("hog commit: %v, want ErrTxnDeadline", err)
	}
	if v := counterValue(t, m, oid); v != 1 {
		t.Fatalf("counter = %d, want 1 (reaped +10 leaked?)", v)
	}
	if st := m.Stats(); st.Reaped == 0 {
		t.Fatal("watchdog reported no reaps")
	}
}
