package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/lock"
	"repro/internal/wal"
	"repro/internal/xid"
)

// mapLockErr converts lock-manager failures into the errors a transaction
// body sees. lock.ErrContext passes through unchanged: it wraps the
// context's own error (Canceled/DeadlineExceeded), which the abort-cause
// accounting and the Run retry classifier dispatch on.
func mapLockErr(err error) error {
	if errors.Is(err, lock.ErrCancelled) {
		return ErrAborted
	}
	return err
}

// dropStrayLocksLocked releases lock grants won by a transaction after its
// abort already ran. Lock acquisition happens outside m.mu, so a body
// goroutine can be granted a lock after abortLocked cancelled the
// transaction's waits and released its locks; nothing would ever release
// such a grant, and every later requester of the object would block
// forever. Every operation that re-checks status after acquiring a lock
// calls this on the re-check's failure path. Caller holds m.mu — the mutex
// serializes the release against an in-flight abort cascade, whose undo
// pass must complete before any of the transaction's locks become free.
func (m *Manager) dropStrayLocksLocked(t *txn) {
	if t.st() == xid.StatusAborting || t.st() == xid.StatusAborted {
		m.locks.ReleaseAll(t.id)
	}
}

// dropStrayLocks is the entry point for code paths that do not already
// hold m.mu (the lock-free Lock/Read operations).
func (m *Manager) dropStrayLocks(t *txn) {
	m.mu.Lock()
	m.dropStrayLocksLocked(t)
	m.mu.Unlock()
}

// Lock acquires the given lock mode on oid without performing an
// operation — the explicit form of the §4.2 read-lock/write-lock calls
// (the analogue of SELECT ... FOR UPDATE). Locks are held until the
// transaction terminates or delegates them.
//
// Lock and Read never touch the manager mutex on their fast path: the
// status checks are atomic reads and the lock table is sharded, so
// lock/read traffic of unrelated transactions shares nothing but its
// object shards. The mutex appears only on the failure path, to serialize
// stray-grant release with an in-flight abort.
//asset:noalloc
func (tx *Tx) Lock(oid xid.OID, ops xid.OpSet) error {
	return tx.LockCtx(tx.t.lockCtx(), oid, ops)
}

// LockCtx is Lock bounded by an explicit per-request context (a deadline
// tighter than the transaction's, say). If ctx dies while the request is
// parked on a shard cond, the request is abandoned cleanly — no grant, no
// wait-graph edges — and the error wraps both lock.ErrContext and the
// context's error. The transaction itself stays alive: an abandoned
// acquisition is the caller's to handle (unlike cancellation of the
// transaction's bound context, which aborts it via the watcher).
//asset:noalloc
func (tx *Tx) LockCtx(ctx context.Context, oid xid.OID, ops xid.OpSet) error {
	m, t := tx.m, tx.t
	if err := t.checkRunning(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = t.lockCtx()
	}
	if err := m.locks.LockCtx(ctx, t.id, oid, ops); err != nil {
		return mapLockErr(err)
	}
	if err := t.checkRunning(); err != nil {
		m.dropStrayLocks(t)
		return err
	}
	return nil
}

// Read returns a copy of the object's contents after acquiring a read lock
// (§4.2 read: read-lock, S-latch, read, unlatch). Mutex-free like Lock.
// Error construction on the miss path is outlined into errNoObject so the
// fast path stays allocation-free.
//asset:noalloc
func (tx *Tx) Read(oid xid.OID) ([]byte, error) {
	m, t := tx.m, tx.t
	if err := t.checkRunning(); err != nil {
		return nil, err
	}
	if err := m.locks.LockCtx(t.lockCtx(), t.id, oid, xid.OpRead); err != nil {
		return nil, mapLockErr(err)
	}
	if err := t.checkRunning(); err != nil {
		m.dropStrayLocks(t)
		return nil, err
	}
	data, ok := m.cache.Read(oid)
	if !ok {
		return nil, errNoObject(oid)
	}
	return data, nil
}

// errNoObject builds the miss error off the Read fast path. Outlined and
// kept out of inlining so its allocations are accounted to this cold
// helper, not to the //asset:noalloc fast path that calls it.
//
//go:noinline
func errNoObject(oid xid.OID) error {
	return fmt.Errorf("%w: %v", ErrNoObject, oid)
}

// Write replaces the object's contents after acquiring a write lock. The
// before and after images are logged before the cache is updated (§4.2
// write: write-lock, X-latch, log before image, write, log after image,
// unlatch — this implementation logs both images in one record under the
// same X hold).
func (tx *Tx) Write(oid xid.OID, data []byte) error {
	m, t := tx.m, tx.t
	if err := m.locks.LockCtx(t.lockCtx(), t.id, oid, xid.OpWrite); err != nil {
		return mapLockErr(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := t.checkRunning(); err != nil {
		m.dropStrayLocksLocked(t)
		return err
	}
	obj := m.cache.Object(oid)
	if obj == nil {
		return fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	obj.Lat.Lock()
	defer obj.Lat.Unlock()
	before := append([]byte(nil), obj.Data()...)
	lsn, err := m.log.Append(&wal.Record{
		Type: wal.TUpdate, TID: t.id, OID: oid, Kind: wal.KindModify,
		Before: before, After: data,
	})
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{lsn: lsn, oid: oid, kind: wal.KindModify, before: before})
	obj.SetData(append([]byte(nil), data...))
	return nil
}

// Update applies fn to the object's current contents and writes the result
// back, all under the transaction's write lock.
func (tx *Tx) Update(oid xid.OID, fn func([]byte) []byte) error {
	m, t := tx.m, tx.t
	if err := m.locks.LockCtx(t.lockCtx(), t.id, oid, xid.OpWrite); err != nil {
		return mapLockErr(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := t.checkRunning(); err != nil {
		m.dropStrayLocksLocked(t)
		return err
	}
	obj := m.cache.Object(oid)
	if obj == nil {
		return fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	obj.Lat.Lock()
	defer obj.Lat.Unlock()
	before := append([]byte(nil), obj.Data()...)
	after := fn(append([]byte(nil), before...))
	lsn, err := m.log.Append(&wal.Record{
		Type: wal.TUpdate, TID: t.id, OID: oid, Kind: wal.KindModify,
		Before: before, After: after,
	})
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{lsn: lsn, oid: oid, kind: wal.KindModify, before: before})
	obj.SetData(after)
	return nil
}

// Create allocates a fresh object holding data and returns its oid. The
// creator implicitly holds a write lock on the new object until it
// terminates, so the object is invisible to other transactions (they block)
// until commit.
func (tx *Tx) Create(data []byte) (xid.OID, error) {
	oid := tx.m.cache.AllocOID()
	if err := tx.CreateAt(oid, data); err != nil {
		return xid.NilOID, err
	}
	return oid, nil
}

// CreateAt creates an object under a caller-chosen oid. It fails with
// ErrObjectExists if the oid is taken.
func (tx *Tx) CreateAt(oid xid.OID, data []byte) error {
	m, t := tx.m, tx.t
	if oid.IsNil() {
		return fmt.Errorf("core: CreateAt with null oid")
	}
	m.cache.SetNextOID(oid) // keep the allocator ahead of explicit oids
	if err := m.locks.LockCtx(t.lockCtx(), t.id, oid, xid.OpWrite); err != nil {
		return mapLockErr(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := t.checkRunning(); err != nil {
		m.dropStrayLocksLocked(t)
		return err
	}
	if !m.cache.Create(oid, append([]byte(nil), data...)) {
		return fmt.Errorf("%w: %v", ErrObjectExists, oid)
	}
	lsn, err := m.log.Append(&wal.Record{
		Type: wal.TUpdate, TID: t.id, OID: oid, Kind: wal.KindCreate, After: data,
	})
	if err != nil {
		m.cache.Delete(oid)
		return err
	}
	t.undo = append(t.undo, undoRec{lsn: lsn, oid: oid, kind: wal.KindCreate})
	return nil
}

// Add atomically adds a signed delta (mod 2^64) to an 8-byte counter
// object under a commutative increment/decrement lock. The commuting
// modes let concurrent transactions update the same hot counter without
// conflicting — the §5 "future work" extension of the paper
// (semantics-based concurrency: commutative class operations). Undo is
// logical (the inverse delta is applied), so an abort does not clobber
// concurrent deltas; the WAL carries the delta itself, never a physical
// before-image, which concurrent deltas would make stale.
//
// When the counter has declared escrow bounds (DeclareEscrow), the delta
// is first reserved against them: the request blocks while other in-flight
// reservations exhaust the headroom and fails with ErrEscrow when the
// bounds can never admit it.
func (tx *Tx) Add(oid xid.OID, delta int64) error {
	return tx.AddCtx(nil, oid, delta)
}

// AddCtx is Add bounded by an explicit per-request context (nil uses the
// transaction's own), with LockCtx's abandonment semantics: if ctx dies
// while the reservation is parked, no mode is granted, nothing is
// reserved, and the error wraps lock.ErrContext plus the context's error.
func (tx *Tx) AddCtx(ctx context.Context, oid xid.OID, delta int64) error {
	m, t := tx.m, tx.t
	if ctx == nil {
		ctx = t.lockCtx()
	}
	if err := m.locks.EscrowReserveCtx(ctx, t.id, oid, delta); err != nil {
		return mapLockErr(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Failure past this point must back the reservation out: its delta
	// never reaches the cache, so folding it at commit would diverge the
	// escrow ledger from the stored counter.
	if err := t.checkRunning(); err != nil {
		m.locks.EscrowUnreserve(t.id, oid, delta)
		m.dropStrayLocksLocked(t)
		return err
	}
	obj := m.cache.Object(oid)
	if obj == nil {
		m.locks.EscrowUnreserve(t.id, oid, delta)
		return fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	obj.Lat.Lock()
	defer obj.Lat.Unlock()
	if len(obj.Data()) != 8 {
		m.locks.EscrowUnreserve(t.id, oid, delta)
		return fmt.Errorf("core: Add on %v: object is %d bytes, want an 8-byte counter", oid, len(obj.Data()))
	}
	img := wal.EncodeCounter(uint64(delta))
	lsn, err := m.log.Append(&wal.Record{
		Type: wal.TUpdate, TID: t.id, OID: oid, Kind: wal.KindDelta, After: img,
	})
	if err != nil {
		m.locks.EscrowUnreserve(t.id, oid, delta)
		return err
	}
	t.undo = append(t.undo, undoRec{lsn: lsn, oid: oid, kind: wal.KindDelta, before: img})
	obj.SetData(wal.EncodeCounter(wal.DecodeCounter(obj.Data()) + uint64(delta)))
	return nil
}

// DeclareEscrow declares inclusive bounds [lo, hi] for an 8-byte counter:
// from now on every Add on it is escrow-checked, so the committed value
// can never leave the bounds no matter how concurrent deltas resolve. The
// current committed value seeds the lock manager's ledger; the caller must
// hold a write lock on the object (the creator's implicit lock after
// Create suffices), which keeps escrow traffic out until declaration
// lands. Bounds are runtime state: re-declare after reopening a store.
// Deleting the object (or rolling back its creation) clears them.
func (tx *Tx) DeclareEscrow(oid xid.OID, lo, hi uint64) error {
	m, t := tx.m, tx.t
	if err := m.locks.LockCtx(t.lockCtx(), t.id, oid, xid.OpWrite); err != nil {
		return mapLockErr(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := t.checkRunning(); err != nil {
		m.dropStrayLocksLocked(t)
		return err
	}
	data, ok := m.cache.Read(oid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	if len(data) != 8 {
		return fmt.Errorf("core: DeclareEscrow on %v: object is %d bytes, want an 8-byte counter", oid, len(data))
	}
	return m.locks.DeclareEscrow(oid, wal.DecodeCounter(data), lo, hi)
}

// ReadCounter reads an 8-byte counter object under a read lock.
func (tx *Tx) ReadCounter(oid xid.OID) (uint64, error) {
	b, err := tx.Read(oid)
	if err != nil {
		return 0, err
	}
	return wal.DecodeCounter(b), nil
}

// Delete removes the object after acquiring a write lock. An abort
// reinstates it.
func (tx *Tx) Delete(oid xid.OID) error {
	m, t := tx.m, tx.t
	if err := m.locks.LockCtx(t.lockCtx(), t.id, oid, xid.OpWrite); err != nil {
		return mapLockErr(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := t.checkRunning(); err != nil {
		m.dropStrayLocksLocked(t)
		return err
	}
	before, ok := m.cache.Read(oid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	lsn, err := m.log.Append(&wal.Record{
		Type: wal.TUpdate, TID: t.id, OID: oid, Kind: wal.KindDelete, Before: before,
	})
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{lsn: lsn, oid: oid, kind: wal.KindDelete, before: before})
	m.cache.Delete(oid)
	// Escrow bounds do not survive the object: deletion clears the
	// declaration (an aborted delete reinstates the object unbounded).
	m.locks.DropEscrow(oid)
	return nil
}
