package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/wal"
	"repro/internal/xid"
)

// TxnOptions carries per-transaction resilience settings for InitiateWith.
type TxnOptions struct {
	// Ctx binds a context to the transaction: its cancellation or deadline
	// expiry aborts the transaction, waking any wait it is parked in
	// (locks, begin/commit dependencies). Nil means no binding (BeginCtx
	// can still bind one later).
	Ctx context.Context
	// Deadline overrides Config.TxnDeadline for this transaction: >0 sets
	// a tighter/looser reap point, <0 disables the watchdog for it, 0
	// inherits the config.
	Deadline time.Duration
}

// Initiate registers a new top-level transaction that will execute fn. The
// transaction does not start executing; call Begin. On resource exhaustion
// it returns ErrTooManyTxns with the null tid (the paper returns the null
// tid alone).
func (m *Manager) Initiate(fn TxnFunc) (xid.TID, error) {
	return m.initiate(fn, xid.NilTID)
}

// InitiateWith is Initiate with a context binding and a deadline override.
func (m *Manager) InitiateWith(fn TxnFunc, opts TxnOptions) (xid.TID, error) {
	return m.initiateOpts(fn, xid.NilTID, opts)
}

func (m *Manager) initiate(fn TxnFunc, parent xid.TID) (xid.TID, error) {
	return m.initiateOpts(fn, parent, TxnOptions{})
}

// initiateOpts is mutex-free: the tid counter, live count, closed flag, and
// descriptor table are all safe for concurrent use, so registering a
// transaction never contends with commits, aborts, or other initiates.
func (m *Manager) initiateOpts(fn TxnFunc, parent xid.TID, opts TxnOptions) (xid.TID, error) {
	if m.closed.Load() {
		return xid.NilTID, ErrClosed
	}
	for {
		n := m.live.Load()
		if m.cfg.MaxTransactions > 0 && n >= int64(m.cfg.MaxTransactions) {
			return xid.NilTID, ErrTooManyTxns
		}
		if m.live.CompareAndSwap(n, n+1) {
			break
		}
	}
	id := xid.TID(m.nextTID.Add(1))
	t := newTxn(id, parent, fn)
	if opts.Ctx != nil {
		t.ctx = opts.Ctx
	}
	d := opts.Deadline
	if d == 0 {
		d = m.cfg.TxnDeadline
	}
	if d > 0 {
		t.deadline.Store(time.Now().Add(d).UnixNano())
		m.ensureWatchdog()
	}
	m.txns.Put(uint64(id), t)
	// Re-check after publishing: Close may have set the flag, flushed, and
	// closed the log between the first check and the Put. Unregistering here
	// fences the race — the transaction can no longer Begin and append to a
	// closed log.
	if m.closed.Load() {
		m.txns.Delete(uint64(id))
		m.live.Add(-1)
		return xid.NilTID, ErrClosed
	}
	return id, nil
}

// Begin starts execution of the given transactions, each on its own
// goroutine. It returns the first error encountered (a transaction that is
// not in the initiated state, an unsatisfiable begin dependency, or an
// admission shed); earlier transactions in the list still start.
func (m *Manager) Begin(tids ...xid.TID) error {
	return m.BeginCtx(context.Background(), tids...)
}

// BeginCtx is Begin with a context bound to each transaction (unless one
// was already bound at InitiateWith): cancelling it — before or after the
// body starts — aborts the transaction, waking any lock, dependency, or
// admission wait it is parked in.
func (m *Manager) BeginCtx(ctx context.Context, tids ...xid.TID) error {
	for _, id := range tids {
		if err := m.beginOne(ctx, id); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) beginOne(ctx context.Context, id xid.TID) error {
	m.mu.Lock()
	t, err := m.lookup(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if t.st() != xid.StatusInitiated {
		m.mu.Unlock()
		if t.st() == xid.StatusAborted || t.st() == xid.StatusAborting {
			return ErrAborted
		}
		return fmt.Errorf("%w: %v is %v", ErrAlreadyBegun, id, t.st())
	}
	// Bind the context before the body, watcher, and admission code that
	// read it exist; an InitiateWith binding wins.
	if t.ctx == nil && ctx != nil {
		t.ctx = ctx
	}
	var ctxDone <-chan struct{}
	if t.ctx != nil {
		ctxDone = t.ctx.Done()
	}
	// Begin dependencies (extension): a BD gate waits for the supporter's
	// commit (its abort aborts t); a BAD gate waits for the supporter's
	// abort (its commit aborts t, via the commit-time forced-abort scan).
	for {
		sup, isBAD := m.pendingBeginDepLocked(t)
		if sup == nil {
			break
		}
		term := sup.term
		supID := sup.id
		m.waits.Add(id, supID)
		m.mu.Unlock()
		select {
		case <-term:
		case <-t.abortCh: // aborted while gated (watchdog, cascade, Close)
			m.waits.Remove(id, supID)
			return txnOutcome(t)
		case <-ctxDone:
			m.waits.Remove(id, supID)
			m.mu.Lock()
			m.ctxAbortLocked(t, t.ctx)
			m.mu.Unlock()
			return txnOutcome(t)
		}
		m.waits.Remove(id, supID)
		m.mu.Lock()
		if !isBAD && sup.st() == xid.StatusAborted {
			m.mu.Unlock()
			m.abortTxn(t, fmt.Errorf("%w: begin dependency on aborted %v", ErrAborted, supID))
			return ErrAborted
		}
	}
	if t.st() != xid.StatusInitiated { // aborted while waiting to begin
		m.mu.Unlock()
		return txnOutcome(t)
	}
	// Admission control: the MaxLive gate bounds the set of transactions
	// that run and hold locks. Crossed after the begin-dependency gates
	// (a gated transaction consumes no slot) and before the transaction
	// turns running.
	if m.admit != nil {
		m.mu.Unlock()
		if err := m.admitOne(t); err != nil {
			return err
		}
		m.mu.Lock()
		if t.st() != xid.StatusInitiated { // aborted while queued
			m.releaseSlot(t)
			m.mu.Unlock()
			return txnOutcome(t)
		}
	}
	t.setSt(xid.StatusRunning)
	m.mu.Unlock()

	if _, err := m.log.Append(&wal.Record{Type: wal.TBegin, TID: id}); err != nil {
		m.abortTxn(t, err)
		return err
	}
	if ctxDone != nil {
		//asset:goroutine joined-by=ctx
		go m.watchCtx(t)
	}
	//asset:goroutine joined-by=channel
	go m.run(t)
	return nil
}

// pendingBeginDepLocked returns a begin-gating supporter that has not yet
// reached the state t waits for (commit for BD, abort for BAD), or nil if
// the transaction may begin. Caller holds m.mu.
func (m *Manager) pendingBeginDepLocked(t *txn) (sup *txn, isBAD bool) {
	for _, e := range m.deps.Outgoing(t.id) {
		bd, bad := e.Types.Has(xid.DepBD), e.Types.Has(xid.DepBAD)
		if !bd && !bad {
			continue
		}
		s, ok := m.txns.Get(uint64(e.Other))
		if !ok {
			continue
		}
		if bd && s.st() != xid.StatusCommitted {
			return s, false
		}
		if bad && s.st() != xid.StatusAborted {
			return s, true
		}
	}
	return nil, false
}

// run executes a transaction body on its own goroutine.
func (m *Manager) run(t *txn) {
	defer func() {
		if r := recover(); r != nil {
			m.abortTxn(t, fmt.Errorf("%w: transaction %v panicked: %v", ErrAborted, t.id, r))
		}
	}()
	err := t.fn(&Tx{m: m, t: t})
	if err != nil {
		m.abortTxn(t, abortReason(err))
		return
	}
	m.mu.Lock()
	if t.st() == xid.StatusRunning {
		// Completion: locks are retained and changes stay volatile until an
		// explicit commit (§2.1).
		t.setSt(xid.StatusCompleted)
	}
	m.mu.Unlock()
	t.closeDone()
	m.cond.Broadcast()
}

// Wait blocks until t completes execution; it returns nil once the code has
// completed (or the transaction already committed) and ErrAborted if t
// aborted (the paper's wait returns 1 and 0 respectively).
//
// Wait is for application code outside any transaction. A transaction
// waiting on another transaction MUST use Tx.Wait instead: that wait is a
// real dependency (the waiter holds locks), and only Tx.Wait registers it
// with deadlock detection.
func (m *Manager) Wait(id xid.TID) error {
	return m.WaitCtx(context.Background(), id)
}

// WaitCtx is Wait bounded by a context. When ctx expires first, WaitCtx
// returns its error without touching the target: an outside observer
// abandoning a wait says nothing about the transaction's fate (use Abort,
// or bind the context at begin, to propagate cancellation).
func (m *Manager) WaitCtx(ctx context.Context, id xid.TID) error {
	m.mu.Lock()
	t, err := m.lookup(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	select {
	case <-t.done:
	case <-ctx.Done():
		return fmt.Errorf("core: wait on %v abandoned: %w", id, ctx.Err())
	}
	return m.waitOutcome(t)
}

func (m *Manager) waitOutcome(t *txn) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.st() == xid.StatusAborted || t.st() == xid.StatusAborting {
		if t.abErr != nil {
			return t.abErr
		}
		return ErrAborted
	}
	return nil
}

// Wait blocks until the target transaction completes, like Manager.Wait,
// but registers the wait in the waits-for graph: the waiting transaction
// holds locks, so "parent waits for child, child waits for a lock" chains
// are real dependencies and can deadlock (e.g. two nested transactions
// whose subtransactions need each other's parents' locks). If this
// transaction is selected as the deadlock victim — or is aborted while
// waiting — Wait returns the abort reason.
func (tx *Tx) Wait(id xid.TID) error {
	return tx.WaitCtx(context.Background(), id)
}

// WaitCtx is Tx.Wait bounded by a context: if ctx expires while blocked,
// the waiting transaction is aborted — it holds locks, so abandoning the
// wait without releasing them would just move the liveness problem — and
// WaitCtx returns the abort reason. The transaction's own bound context
// (BeginCtx) wakes this wait too, through the watcher's abort.
func (tx *Tx) WaitCtx(ctx context.Context, id xid.TID) error {
	m, t := tx.m, tx.t
	m.mu.Lock()
	target, err := m.lookup(id)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	victim, _ := m.waits.Add(t.id, id)
	if !victim.IsNil() {
		if vt, ok := m.txns.Get(uint64(victim)); ok {
			m.abortLocked(vt, fmt.Errorf("%w: wait-for deadlock victim: %w", ErrAborted, ErrDeadlock))
		}
	}
	m.mu.Unlock()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-target.done:
	case <-t.abortCh:
	case <-ctxDone:
		m.abortTxn(t, abortReason(fmt.Errorf("core: wait on %v cancelled: %w", id, ctx.Err())))
	}
	m.waits.Remove(t.id, id)
	m.mu.Lock()
	if t.st() == xid.StatusAborting || t.st() == xid.StatusAborted {
		err := t.abErr
		m.mu.Unlock()
		if err == nil {
			err = ErrAborted
		}
		return err
	}
	m.mu.Unlock()
	return m.waitOutcome(target)
}

// Delegate transfers from ti to tj the responsibility for ti's operations
// on the given objects — their locks, their undo records, and any
// permissions given by ti on them. A nil oids delegates everything ti is
// responsible for (the delegate(ti, tj) form).
func (m *Manager) Delegate(from, to xid.TID, oids ...xid.OID) error {
	var oidSet []xid.OID
	if len(oids) > 0 {
		oidSet = oids
	}
	m.mu.Lock()
	ft, err := m.lookup(from)
	if err == nil {
		_, err = m.lookup(to)
	}
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if ft.st().Terminated() || ft.st() == xid.StatusCommitting || ft.st() == xid.StatusPrepared {
		// A prepared delegator's undo/lock set is frozen in its TPrepare
		// promise; moving responsibility now would falsify the vote.
		m.mu.Unlock()
		return fmt.Errorf("%w: delegator %v is %v", ErrTerminated, from, ft.st())
	}
	tt, _ := m.txns.Get(uint64(to))
	if tt.st().Terminated() || tt.st() == xid.StatusCommitting || tt.st() == xid.StatusPrepared {
		// A committing delegatee has already written its commit record;
		// work delegated now would be mis-attributed at recovery.
		m.mu.Unlock()
		return fmt.Errorf("%w: delegatee %v is %v", ErrTerminated, to, tt.st())
	}
	// The whole transfer — undo responsibility, locks with permit
	// grantorship, and the log record — happens inside the manager's
	// critical section, so no commit of either party can interleave:
	// the TDelegate record is always ordered before any TCommit that
	// covers the delegated updates, which is what recovery relies on.
	m.moveUndoLocked(ft, tt, oidSet)
	m.locks.Delegate(from, to, oidSet)
	_, err = m.log.Append(&wal.Record{Type: wal.TDelegate, TID: from, TID2: to, OIDs: oidSet})
	m.mu.Unlock()
	return err
}

// moveUndoLocked moves matching undo records from ft to tt in LSN order.
// Caller holds m.mu.
func (m *Manager) moveUndoLocked(ft, tt *txn, oids []xid.OID) {
	if ft == tt {
		return
	}
	if oids == nil {
		if len(ft.undo) == 0 {
			return
		}
		tt.undo = mergeByLSN(tt.undo, ft.undo)
		ft.undo = nil
		return
	}
	want := make(map[xid.OID]bool, len(oids))
	for _, o := range oids {
		want[o] = true
	}
	var keep, move []undoRec
	for _, u := range ft.undo {
		if want[u.oid] {
			move = append(move, u)
		} else {
			keep = append(keep, u)
		}
	}
	if len(move) == 0 {
		return
	}
	ft.undo = keep
	tt.undo = mergeByLSN(tt.undo, move)
}

// mergeByLSN merges two LSN-ascending undo lists.
func mergeByLSN(a, b []undoRec) []undoRec {
	out := make([]undoRec, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].lsn <= b[j].lsn {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Permit lets grantee perform the given operations on the given objects
// despite conflicts with grantor's locks. Wildcards per §2.2: grantee
// NilTID = any transaction; empty ops = all operations; no oids = every
// object grantor has accessed or has permission to access.
func (m *Manager) Permit(grantor, grantee xid.TID, oids []xid.OID, ops xid.OpSet) error {
	m.mu.Lock()
	gt, err := m.lookup(grantor)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if gt.st().Terminated() {
		m.mu.Unlock()
		return fmt.Errorf("%w: grantor %v", ErrTerminated, grantor)
	}
	if !grantee.IsNil() {
		if _, err := m.lookup(grantee); err != nil {
			m.mu.Unlock()
			return err
		}
	}
	// Granting under the manager mutex keeps the permit atomic with the
	// grantor's status check (a racing commit cannot release-and-leak).
	m.locks.Permit(grantor, grantee, oids, ops)
	m.mu.Unlock()
	return nil
}

// FormDependency records form_dependency(typ, ti, tj). Dependencies whose
// outcome is already forced are resolved immediately: an AD or GC on an
// aborted ti aborts tj; CD/AD/BD on a terminated ti are vacuously satisfied;
// a GC with a committed ti cannot be honoured and returns ErrTerminated.
func (m *Manager) FormDependency(typ xid.DepType, ti, tj xid.TID) error {
	m.mu.Lock()
	a, err := m.lookup(ti)
	var b *txn
	if err == nil {
		b, err = m.lookup(tj)
	}
	if err != nil {
		m.mu.Unlock()
		return err
	}
	// Terminal states of the dependent tj resolve (or reject) immediately:
	// a transaction that is committing or has terminated cannot take on new
	// constraints.
	switch {
	case b.st() == xid.StatusAborted || b.st() == xid.StatusAborting:
		m.mu.Unlock()
		if typ == xid.DepGC {
			// Both or neither: tj already aborted, so ti must abort too.
			m.abortTxn(a, fmt.Errorf("%w: group partner %v aborted", ErrAborted, tj))
		}
		return nil // every other constraint on an aborted tj is moot
	case b.st() == xid.StatusCommitted || b.st() == xid.StatusCommitting:
		m.mu.Unlock()
		return fmt.Errorf("%w: dependent %v is already %v", ErrTerminated, tj, b.st())
	case b.st() == xid.StatusPrepared:
		// A prepared dependent promised a coordinator it can commit; a new
		// constraint could invalidate the vote.
		m.mu.Unlock()
		return fmt.Errorf("%w: dependent %v", ErrPrepared, tj)
	}
	switch {
	case a.st() == xid.StatusAborted || a.st() == xid.StatusAborting:
		m.mu.Unlock()
		if typ == xid.DepAD || typ == xid.DepGC ||
			(typ == xid.DepBD && b.st() == xid.StatusInitiated) {
			m.abortTxn(b, fmt.Errorf("%w: dependency on aborted %v", ErrAborted, ti))
		}
		return nil
	case a.st() == xid.StatusCommitting && typ == xid.DepGC:
		m.mu.Unlock()
		return fmt.Errorf("%w: group commit with committing %v", ErrTerminated, ti)
	case a.st() == xid.StatusPrepared && typ == xid.DepGC:
		// The prepared supporter's GC closure was fixed by its vote; the
		// group cannot grow while the verdict is pending. (CD/AD on a
		// prepared supporter are fine — the dependent waits on its term.)
		m.mu.Unlock()
		return fmt.Errorf("%w: group commit with prepared %v", ErrPrepared, ti)
	case a.st() == xid.StatusCommitted:
		m.mu.Unlock()
		switch typ {
		case xid.DepGC:
			return fmt.Errorf("%w: group commit with committed %v", ErrTerminated, ti)
		case xid.DepBAD, xid.DepEXC:
			// The committed ti forecloses tj's outcome immediately.
			m.abortTxn(b, fmt.Errorf("%w: excluded by committed %v", ErrAborted, ti))
			return nil
		}
		return nil // CD/AD/BD on a committed supporter are satisfied
	}
	defer m.mu.Unlock()
	return m.deps.Form(typ, ti, tj)
}
