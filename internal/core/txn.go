package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/wal"
	"repro/internal/xid"
)

// TxnFunc is the body of a transaction. It receives the transaction handle
// (Go's substitute for the paper's implicit self()); returning nil marks the
// transaction completed (locks retained until commit), returning an error —
// or panicking — aborts it.
type TxnFunc func(tx *Tx) error

// undoRec is one entry of a transaction's undo responsibility list: enough
// to install the before image on abort. Delegation moves these records
// between transactions together with the locks.
type undoRec struct {
	lsn    uint64
	oid    xid.OID
	kind   wal.UpdateKind // the original operation
	before []byte
}

// txn is the transaction descriptor (TD of §4.1): identity, parentage,
// status, the function to execute, and the undo responsibility list. The
// undo list is guarded by the manager mutex. Status transitions still
// happen under the manager mutex (they are read-modify-write decisions),
// but the field itself is atomic so status *reads* — the hot pre- and
// post-lock checks of every Tx operation, StatusOf, Transactions — need no
// mutex. abErr is written before the status turns aborting and never
// again, so any reader that observes an aborting/aborted status also
// observes the reason.
type txn struct {
	id     xid.TID
	parent xid.TID
	fn     TxnFunc

	status atomic.Int32 // holds an xid.Status
	abErr  error        // why the transaction aborted, if it did

	// done closes when the function finishes or the transaction aborts
	// (wait() unblocks on either). term closes on final termination.
	// abortCh closes when the status turns aborting, waking the commit
	// driver.
	done    chan struct{}
	term    chan struct{}
	abortCh chan struct{}

	doneOnce  sync.Once
	termOnce  sync.Once
	abortOnce sync.Once

	// ctx binds external cancellation to the transaction. Written at
	// InitiateWith, or by BeginCtx before the status turns running (under
	// the manager mutex, before the body/watcher goroutines that read it
	// are spawned); nil means no binding. Every lock wait of the body uses
	// it, and a watcher goroutine converts its expiry into an abort.
	ctx context.Context
	// deadline is the watchdog reap point in unix nanoseconds; 0 = none.
	deadline atomic.Int64
	// admitted records that the transaction holds a Config.MaxLive
	// admission slot, which commit/abort must return to the gate.
	admitted atomic.Bool

	undo []undoRec
	// redo holds the withheld after-images of a transaction recovered in
	// doubt (prepared in the WAL, verdict unknown): installed on a commit
	// verdict, discarded on abort. Empty for ordinary transactions, whose
	// updates live in the cache and roll back via undo.
	redo []wal.RedoOp
}

// bgCtx caches context.Background() so lockCtx stays allocation-free:
// the literal backgroundCtx{} composite escapes at every call site it is
// inlined into, which would charge one heap object per unbound Lock/Read.
var bgCtx = context.Background()

// lockCtx is the context the transaction's lock requests wait under.
func (t *txn) lockCtx() context.Context {
	if t.ctx != nil {
		return t.ctx
	}
	return bgCtx
}

func newTxn(id, parent xid.TID, fn TxnFunc) *txn {
	t := &txn{
		id:      id,
		parent:  parent,
		fn:      fn,
		done:    make(chan struct{}),
		term:    make(chan struct{}),
		abortCh: make(chan struct{}),
	}
	t.setSt(xid.StatusInitiated)
	return t
}

// st reads the transaction status; safe without any lock.
func (t *txn) st() xid.Status { return xid.Status(t.status.Load()) }

// setSt publishes a new status. Callers deciding a transition based on the
// current status must hold the manager mutex; the store itself makes the
// new status (and, for aborts, the previously written abErr) visible to
// lock-free readers.
func (t *txn) setSt(s xid.Status) { t.status.Store(int32(s)) }

// checkRunning verifies the transaction may perform operations; safe
// without any lock.
func (t *txn) checkRunning() error {
	switch st := t.st(); st {
	case xid.StatusRunning:
		return nil
	case xid.StatusAborting, xid.StatusAborted:
		return ErrAborted
	default:
		return fmt.Errorf("core: operation in %v transaction %v", st, t.id)
	}
}

func (t *txn) closeDone()  { t.doneOnce.Do(func() { close(t.done) }) }
func (t *txn) closeTerm()  { t.termOnce.Do(func() { close(t.term) }) }
func (t *txn) closeAbort() { t.abortOnce.Do(func() { close(t.abortCh) }) }

// Tx is the handle a TxnFunc uses to operate on the database and to invoke
// transaction primitives with itself as the implicit subject.
type Tx struct {
	m *Manager
	t *txn
}

// ID returns the transaction identifier (the paper's self()).
func (tx *Tx) ID() xid.TID { return tx.t.id }

// Parent returns the tid of the transaction that initiated this one, or the
// null tid for top-level transactions (the paper's parent()).
func (tx *Tx) Parent() xid.TID { return tx.t.parent }

// Manager returns the transaction manager, for invoking primitives on other
// transactions from within a transaction body.
func (tx *Tx) Manager() *Manager { return tx.m }

// Initiate registers a new transaction whose parent is this transaction.
func (tx *Tx) Initiate(fn TxnFunc) (xid.TID, error) {
	return tx.m.initiate(fn, tx.t.id)
}

// Status returns the transaction's current status (one of the query
// primitives §2.1 mentions in passing).
func (tx *Tx) Status() xid.Status { return tx.m.StatusOf(tx.t.id) }
