package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/xid"
)

func TestCreateReadWriteDelete(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("v1"))
	runTxn(t, m, func(tx *Tx) error {
		got, err := tx.Read(oid)
		if err != nil || string(got) != "v1" {
			t.Fatalf("Read = %q, %v", got, err)
		}
		if err := tx.Write(oid, []byte("v2")); err != nil {
			return err
		}
		got, err = tx.Read(oid)
		if err != nil || string(got) != "v2" {
			t.Fatalf("Read own write = %q, %v", got, err)
		}
		return nil
	})
	runTxn(t, m, func(tx *Tx) error {
		if err := tx.Delete(oid); err != nil {
			return err
		}
		if _, err := tx.Read(oid); !errors.Is(err, ErrNoObject) {
			t.Fatalf("Read deleted = %v", err)
		}
		return nil
	})
	if _, ok := m.Cache().Read(oid); ok {
		t.Fatal("object survived committed delete")
	}
}

func TestUpdateHelper(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte{0})
	runTxn(t, m, func(tx *Tx) error {
		return tx.Update(oid, func(b []byte) []byte {
			b[0]++
			return b
		})
	})
	got, _ := m.Cache().Read(oid)
	if got[0] != 1 {
		t.Fatalf("counter = %d", got[0])
	}
}

func TestAbortRestoresValues(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("orig"))
	id, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Write(oid, []byte("dirty1")); err != nil {
			return err
		}
		if err := tx.Write(oid, []byte("dirty2")); err != nil {
			return err
		}
		if _, err := tx.Create([]byte("extra")); err != nil {
			return err
		}
		return nil
	})
	m.Begin(id)
	m.Wait(id)
	if err := m.Abort(id); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Cache().Read(oid)
	if !ok || string(got) != "orig" {
		t.Fatalf("after abort = %q,%v; want orig", got, ok)
	}
	if m.Cache().Len() != 1 {
		t.Fatalf("created object survived abort (cache len %d)", m.Cache().Len())
	}
}

func TestAbortRestoresDeletedObject(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("keepme"))
	id, _ := m.Initiate(func(tx *Tx) error { return tx.Delete(oid) })
	m.Begin(id)
	m.Wait(id)
	m.Abort(id)
	got, ok := m.Cache().Read(oid)
	if !ok || string(got) != "keepme" {
		t.Fatalf("deleted object not reinstated: %q,%v", got, ok)
	}
}

func TestIsolationUncommittedInvisible(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("clean"))
	wrote := make(chan struct{})
	hold := make(chan struct{})
	writer, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Write(oid, []byte("uncommitted")); err != nil {
			return err
		}
		close(wrote)
		<-hold
		return nil
	})
	m.Begin(writer)
	<-wrote
	// A reader must block on the writer's lock, not see dirty data.
	readerDone := make(chan string, 1)
	reader, _ := m.Initiate(func(tx *Tx) error {
		data, err := tx.Read(oid)
		if err != nil {
			return err
		}
		readerDone <- string(data)
		return nil
	})
	m.Begin(reader)
	select {
	case v := <-readerDone:
		t.Fatalf("reader saw %q while writer uncommitted", v)
	case <-time.After(30 * time.Millisecond):
	}
	close(hold)
	if err := m.Commit(writer); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(reader); err != nil {
		t.Fatal(err)
	}
	if v := <-readerDone; v != "uncommitted" {
		t.Fatalf("reader saw %q after writer commit", v)
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte{0, 0, 0, 0})
	const workers, iters = 8, 50
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < iters; i++ {
				id, err := m.Initiate(func(tx *Tx) error {
					return tx.Update(oid, func(b []byte) []byte {
						// 32-bit counter increment
						v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
						v++
						return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
					})
				})
				if err != nil {
					errs <- err
					return
				}
				m.Begin(id)
				if err := m.Commit(id); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	b, _ := m.Cache().Read(oid)
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if v != workers*iters {
		t.Fatalf("counter = %d, want %d (lost update)", v, workers*iters)
	}
}

func TestDeadlockVictimAborts(t *testing.T) {
	m := newMem(t)
	a := seedObject(t, m, []byte("a"))
	b := seedObject(t, m, []byte("b"))
	gotA := make(chan struct{})
	gotB := make(chan struct{})
	res := make(chan error, 2)
	t1, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Write(a, []byte("1")); err != nil {
			return err
		}
		close(gotA)
		<-gotB
		return tx.Write(b, []byte("1"))
	})
	t2, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Write(b, []byte("2")); err != nil {
			return err
		}
		close(gotB)
		<-gotA
		return tx.Write(a, []byte("2"))
	})
	m.Begin(t1, t2)
	go func() { res <- m.Commit(t1) }()
	go func() { res <- m.Commit(t2) }()
	e1, e2 := <-res, <-res
	// Exactly one commits, one aborts.
	if (e1 == nil) == (e2 == nil) {
		t.Fatalf("results %v / %v; want one nil one ErrAborted", e1, e2)
	}
	if e1 != nil && !errors.Is(e1, ErrAborted) {
		t.Fatalf("loser error = %v", e1)
	}
	if e2 != nil && !errors.Is(e2, ErrAborted) {
		t.Fatalf("loser error = %v", e2)
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("no deadlock recorded")
	}
	// Values are consistent: both objects written by the winner.
	va, _ := m.Cache().Read(a)
	vb, _ := m.Cache().Read(b)
	if !bytes.Equal(va, vb) {
		t.Fatalf("inconsistent state a=%q b=%q", va, vb)
	}
}

func TestCreateAtExplicitOID(t *testing.T) {
	m := newMem(t)
	runTxn(t, m, func(tx *Tx) error { return tx.CreateAt(xid.OID(500), []byte("explicit")) })
	if _, ok := m.Cache().Read(500); !ok {
		t.Fatal("explicit oid missing")
	}
	// Allocator must not collide with the explicit oid.
	var next xid.OID
	runTxn(t, m, func(tx *Tx) error {
		var err error
		next, err = tx.Create([]byte("auto"))
		return err
	})
	if next <= 500 {
		t.Fatalf("allocator returned %v, want > 500", next)
	}
	// Duplicate CreateAt fails.
	id, _ := m.Initiate(func(tx *Tx) error { return tx.CreateAt(500, []byte("dup")) })
	m.Begin(id)
	if err := m.Commit(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("dup CreateAt commit = %v", err)
	}
}

func TestWriteMissingObject(t *testing.T) {
	m := newMem(t)
	id, _ := m.Initiate(func(tx *Tx) error {
		err := tx.Write(12345, []byte("x"))
		if !errors.Is(err, ErrNoObject) {
			t.Errorf("Write missing = %v", err)
		}
		return err
	})
	m.Begin(id)
	m.Wait(id)
}

// TestAbortRacingOperationDoesNotLeakLocks pins the fix for a lock leak
// the -race bench sweep exposed: lock acquisition happens outside m.mu,
// so a body goroutine could win a grant *after* its transaction's abort
// had already cancelled its waits and released its locks. Nothing ever
// released that stray grant, and every later writer of the object hung
// forever. Here the body is held at a gate until the abort fully
// completes, then issues operations; each must fail with ErrAborted and
// must leave the object lockable.
func TestAbortRacingOperationDoesNotLeakLocks(t *testing.T) {
	m := newMem(t)
	runTxn(t, m, func(tx *Tx) error { return tx.CreateAt(1, []byte("v")) })

	ops := map[string]func(*Tx) error{
		"write":  func(tx *Tx) error { return tx.Write(1, []byte("zombie")) },
		"lock":   func(tx *Tx) error { return tx.Lock(1, xid.OpWrite) },
		"read":   func(tx *Tx) error { _, err := tx.Read(1); return err },
		"delete": func(tx *Tx) error { return tx.Delete(1) },
	}
	for name, op := range ops {
		t.Run(name, func(t *testing.T) {
			running := make(chan struct{})
			aborted := make(chan struct{})
			opErr := make(chan error, 1)
			id, _ := m.Initiate(func(tx *Tx) error {
				close(running)
				<-aborted // the abort has fully run: waits cancelled, locks released
				err := op(tx)
				opErr <- err
				return err
			})
			if err := m.Begin(id); err != nil {
				t.Fatal(err)
			}
			<-running
			if err := m.Abort(id); err != nil {
				t.Fatal(err)
			}
			close(aborted)
			if err := <-opErr; !errors.Is(err, ErrAborted) {
				t.Fatalf("%s after abort = %v, want ErrAborted", name, err)
			}
			// The stray grant must have been dropped: a fresh writer of the
			// same object must not block behind a dead transaction.
			runTxn(t, m, func(tx *Tx) error { return tx.Write(1, []byte("after-"+name)) })
		})
	}
}

// TestLockFastPathAllocs: re-acquiring a held lock is allocation-free.
// The unbound-context fast path must not materialize a fresh
// context.Background() per call — the lockCtx escape fixed in the
// //asset:noalloc burn-down (the compile-time gate proves the frame
// clean; this pins the whole call chain at runtime).
func TestLockFastPathAllocs(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("v"))
	runTxn(t, m, func(tx *Tx) error {
		if err := tx.Lock(oid, xid.OpRead); err != nil {
			return err
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := tx.Lock(oid, xid.OpRead); err != nil {
				t.Errorf("Lock: %v", err)
			}
		})
		if allocs != 0 {
			t.Errorf("re-lock allocates %v objects per call, want 0", allocs)
		}
		return nil
	})
}
