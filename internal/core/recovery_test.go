package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/xid"
)

func openDurable(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := Open(Config{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDurableCommitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m := openDurable(t, dir)
	var oid xid.OID
	runTxn(t, m, func(tx *Tx) error {
		var err error
		oid, err = tx.Create([]byte("durable"))
		return err
	})
	// No checkpoint, no clean close: simulate a crash by reopening.
	m.Close()
	m2 := openDurable(t, dir)
	defer m2.Close()
	got, ok := m2.Cache().Read(oid)
	if !ok || string(got) != "durable" {
		t.Fatalf("recovered = %q,%v", got, ok)
	}
}

func TestUncommittedLostOnRestart(t *testing.T) {
	dir := t.TempDir()
	m := openDurable(t, dir)
	base := seedObject(t, m, []byte("committed"))
	hold := make(chan struct{})
	started := make(chan struct{})
	id, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Write(base, []byte("dirty")); err != nil {
			return err
		}
		if _, err := tx.Create([]byte("orphan")); err != nil {
			return err
		}
		close(started)
		<-hold
		return nil
	})
	m.Begin(id)
	<-started
	m.Close() // crash with the transaction in flight
	close(hold)

	m2 := openDurable(t, dir)
	defer m2.Close()
	got, ok := m2.Cache().Read(base)
	if !ok || string(got) != "committed" {
		t.Fatalf("base = %q,%v; want committed", got, ok)
	}
	if m2.Cache().Len() != 1 {
		t.Fatalf("cache len = %d, want 1 (orphan must not recover)", m2.Cache().Len())
	}
}

func TestAbortedStaysAbortedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m := openDurable(t, dir)
	oid := seedObject(t, m, []byte("v0"))
	id, _ := m.Initiate(func(tx *Tx) error { return tx.Write(oid, []byte("v1")) })
	m.Begin(id)
	m.Wait(id)
	m.Abort(id)
	m.Close()
	m2 := openDurable(t, dir)
	defer m2.Close()
	got, _ := m2.Cache().Read(oid)
	if string(got) != "v0" {
		t.Fatalf("recovered = %q, want v0", got)
	}
}

func TestDelegatedCommitSurvivesDelegatorAbortAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m := openDurable(t, dir)
	oid := seedObject(t, m, []byte("base"))
	worker, _ := m.Initiate(func(tx *Tx) error { return tx.Write(oid, []byte("delegated")) })
	holder, _ := m.Initiate(noop)
	m.Begin(worker, holder)
	m.Wait(worker)
	m.Wait(holder)
	m.Delegate(worker, holder)
	m.Abort(worker)
	if err := m.Commit(holder); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m2 := openDurable(t, dir)
	defer m2.Close()
	got, _ := m2.Cache().Read(oid)
	if string(got) != "delegated" {
		t.Fatalf("recovered = %q, want delegated", got)
	}
}

func TestCheckpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	m := openDurable(t, dir)
	var oids []xid.OID
	for i := 0; i < 20; i++ {
		oids = append(oids, seedObject(t, m, []byte(fmt.Sprintf("v%d", i))))
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint work.
	runTxn(t, m, func(tx *Tx) error { return tx.Write(oids[3], []byte("updated")) })
	runTxn(t, m, func(tx *Tx) error { return tx.Delete(oids[7]) })
	m.Close()
	m2 := openDurable(t, dir)
	defer m2.Close()
	if got, _ := m2.Cache().Read(oids[3]); string(got) != "updated" {
		t.Fatalf("oids[3] = %q", got)
	}
	if _, ok := m2.Cache().Read(oids[7]); ok {
		t.Fatal("deleted object recovered")
	}
	if got, _ := m2.Cache().Read(oids[5]); string(got) != "v5" {
		t.Fatalf("checkpointed object = %q", got)
	}
	if m2.Cache().Len() != 19 {
		t.Fatalf("cache len = %d, want 19", m2.Cache().Len())
	}
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	m := newMem(t)
	hold := make(chan struct{})
	id, _ := m.Initiate(func(tx *Tx) error { <-hold; return nil })
	m.Begin(id)
	if err := m.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded with a live transaction")
	}
	close(hold)
	m.Commit(id)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestTIDsContinueAfterRestart(t *testing.T) {
	dir := t.TempDir()
	m := openDurable(t, dir)
	last := runTxn(t, m, func(tx *Tx) error {
		_, err := tx.Create([]byte("x"))
		return err
	})
	m.Close()
	m2 := openDurable(t, dir)
	defer m2.Close()
	next, err := m2.Initiate(noop)
	if err != nil {
		t.Fatal(err)
	}
	if next <= last {
		t.Fatalf("tid %v reused after restart (last was %v)", next, last)
	}
}

// TestQuickRecoveryMatchesLiveState runs random committed/aborted
// transactions against a durable manager, then verifies a reopened manager
// sees exactly the live cache state.
func TestQuickRecoveryMatchesLiveState(t *testing.T) {
	type step struct {
		Oid    uint8
		Val    uint8
		Op     uint8
		Commit bool
	}
	f := func(steps []step) bool {
		dir := t.TempDir()
		m, err := Open(Config{Dir: dir})
		if err != nil {
			return false
		}
		for _, s := range steps {
			oid := xid.OID(s.Oid%16 + 1)
			val := []byte{s.Val}
			id, err := m.Initiate(func(tx *Tx) error {
				switch s.Op % 3 {
				case 0:
					if _, ok := m.Cache().Read(oid); !ok {
						return tx.CreateAt(oid, val)
					}
					return tx.Write(oid, val)
				case 1:
					if _, ok := m.Cache().Read(oid); ok {
						return tx.Delete(oid)
					}
					return nil
				default:
					_, err := tx.Read(oid)
					if err != nil {
						return nil // missing object: fine
					}
					return nil
				}
			})
			if err != nil {
				return false
			}
			m.Begin(id)
			if s.Commit {
				m.Commit(id)
			} else {
				m.Wait(id)
				m.Abort(id)
			}
		}
		// Snapshot live state.
		want := map[xid.OID][]byte{}
		m.Cache().ForEach(func(oid xid.OID, data []byte) bool {
			want[oid] = data
			return true
		})
		m.Close()
		m2, err := Open(Config{Dir: dir})
		if err != nil {
			return false
		}
		defer m2.Close()
		if m2.Cache().Len() != len(want) {
			return false
		}
		ok := true
		m2.Cache().ForEach(func(oid xid.OID, data []byte) bool {
			if !bytes.Equal(want[oid], data) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
