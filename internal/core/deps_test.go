package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/xid"
)

func initiated(t *testing.T, m *Manager, fn TxnFunc) xid.TID {
	t.Helper()
	id, err := m.Initiate(fn)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func noop(tx *Tx) error { return nil }

func TestGroupCommitAllOrNothing(t *testing.T) {
	m := newMem(t)
	var oids [3]xid.OID
	var ids [3]xid.TID
	for i := range ids {
		i := i
		ids[i] = initiated(t, m, func(tx *Tx) error {
			oid, err := tx.Create([]byte{byte(i)})
			oids[i] = oid
			return err
		})
	}
	m.FormDependency(xid.DepGC, ids[0], ids[1])
	m.FormDependency(xid.DepGC, ids[1], ids[2])
	if err := m.Begin(ids[0], ids[1], ids[2]); err != nil {
		t.Fatal(err)
	}
	// Committing any one member commits the whole group (paper §3.1.2).
	if err := m.Commit(ids[1]); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if got := m.StatusOf(id); got != xid.StatusCommitted {
			t.Fatalf("%v status = %v, want committed", id, got)
		}
		// Later commit invocations simply return success.
		if err := m.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	if m.Cache().Len() != 3 {
		t.Fatalf("cache len = %d, want 3", m.Cache().Len())
	}
	// One commit record covered the group.
	if st := m.Stats(); st.LogForces != 1 || st.Commits != 3 {
		t.Fatalf("forces=%d commits=%d, want 1/3", st.LogForces, st.Commits)
	}
}

func TestGroupCommitWaitsForRunningMember(t *testing.T) {
	m := newMem(t)
	release := make(chan struct{})
	a := initiated(t, m, noop)
	b := initiated(t, m, func(tx *Tx) error { <-release; return nil })
	m.FormDependency(xid.DepGC, a, b)
	m.Begin(a, b)
	res := make(chan error, 1)
	go func() { res <- m.Commit(a) }()
	select {
	case err := <-res:
		t.Fatalf("group committed (%v) while member running", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if m.StatusOf(b) != xid.StatusCommitted {
		t.Fatal("member b not committed")
	}
}

func TestGroupAbortsTogether(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("base"))
	a := initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte("A")) })
	b := initiated(t, m, func(tx *Tx) error { return errors.New("b fails") })
	m.FormDependency(xid.DepGC, a, b)
	m.Begin(a, b)
	if err := m.Commit(a); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit = %v, want ErrAborted", err)
	}
	if m.StatusOf(a) != xid.StatusAborted || m.StatusOf(b) != xid.StatusAborted {
		t.Fatal("group members not all aborted")
	}
	got, _ := m.Cache().Read(oid)
	if string(got) != "base" {
		t.Fatalf("object = %q, want base (a's write undone)", got)
	}
}

func TestAbortDependencyPropagates(t *testing.T) {
	m := newMem(t)
	ti := initiated(t, m, noop)
	tj := initiated(t, m, noop)
	// AD: if ti aborts, tj must abort.
	if err := m.FormDependency(xid.DepAD, ti, tj); err != nil {
		t.Fatal(err)
	}
	m.Begin(ti, tj)
	m.Wait(ti)
	m.Wait(tj)
	if err := m.Abort(ti); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(tj); got != xid.StatusAborted {
		t.Fatalf("tj status = %v, want aborted (AD propagation)", got)
	}
}

func TestCommitDependencyDoesNotPropagitateAbort(t *testing.T) {
	m := newMem(t)
	ti := initiated(t, m, noop)
	tj := initiated(t, m, noop)
	m.FormDependency(xid.DepCD, ti, tj)
	m.Begin(ti, tj)
	m.Wait(ti)
	m.Wait(tj)
	m.Abort(ti)
	// CD: tj may still commit after ti aborts.
	if err := m.Commit(tj); err != nil {
		t.Fatalf("tj commit after ti abort = %v", err)
	}
}

func TestCommitDependencyOrdersCommits(t *testing.T) {
	m := newMem(t)
	ti := initiated(t, m, noop)
	tj := initiated(t, m, noop)
	m.FormDependency(xid.DepCD, ti, tj) // tj cannot commit before ti terminates
	m.Begin(ti, tj)
	m.Wait(ti)
	m.Wait(tj)
	res := make(chan error, 1)
	go func() { res <- m.Commit(tj) }()
	select {
	case err := <-res:
		t.Fatalf("tj committed (%v) before ti terminated", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := m.Commit(ti); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
}

func TestADBlocksCommitUntilSupporterTerminates(t *testing.T) {
	m := newMem(t)
	ti := initiated(t, m, noop)
	tj := initiated(t, m, noop)
	m.FormDependency(xid.DepAD, ti, tj)
	m.Begin(ti, tj)
	m.Wait(ti)
	m.Wait(tj)
	res := make(chan error, 1)
	go func() { res <- m.Commit(tj) }()
	select {
	case err := <-res:
		t.Fatalf("tj committed (%v) while ti active", err)
	case <-time.After(30 * time.Millisecond):
	}
	// ti aborts -> tj must abort (its pending commit fails).
	m.Abort(ti)
	if err := <-res; !errors.Is(err, ErrAborted) {
		t.Fatalf("tj commit = %v, want ErrAborted", err)
	}
}

func TestDependencyCycleRejected(t *testing.T) {
	m := newMem(t)
	a := initiated(t, m, noop)
	b := initiated(t, m, noop)
	if err := m.FormDependency(xid.DepCD, a, b); err != nil {
		t.Fatal(err)
	}
	if err := m.FormDependency(xid.DepCD, b, a); !errors.Is(err, ErrDependencyCycle) {
		t.Fatalf("err = %v, want ErrDependencyCycle", err)
	}
}

func TestFormDependencyOnAbortedSupporter(t *testing.T) {
	m := newMem(t)
	a := initiated(t, m, noop)
	b := initiated(t, m, noop)
	m.Begin(a, b)
	m.Wait(a)
	m.Wait(b)
	m.Abort(a)
	// AD on an aborted supporter immediately aborts the dependent.
	if err := m.FormDependency(xid.DepAD, a, b); err != nil {
		t.Fatal(err)
	}
	if m.StatusOf(b) != xid.StatusAborted {
		t.Fatal("b not aborted by AD on aborted supporter")
	}
}

func TestFormDependencyOnCommittedSupporter(t *testing.T) {
	m := newMem(t)
	a := runTxn(t, m, noop)
	b := initiated(t, m, noop)
	m.Begin(b)
	m.Wait(b)
	// CD/AD on committed supporter: vacuously satisfied.
	if err := m.FormDependency(xid.DepCD, a, b); err != nil {
		t.Fatal(err)
	}
	if err := m.FormDependency(xid.DepAD, a, b); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	// GC with a committed member is impossible.
	c := initiated(t, m, noop)
	if err := m.FormDependency(xid.DepGC, a, c); !errors.Is(err, ErrTerminated) {
		t.Fatalf("GC on committed = %v, want ErrTerminated", err)
	}
}

func TestBeginDependency(t *testing.T) {
	m := newMem(t)
	sup := initiated(t, m, noop)
	var order []string
	dep := initiated(t, m, func(tx *Tx) error {
		order = append(order, "dep-ran")
		return nil
	})
	m.FormDependency(xid.DepBD, sup, dep)
	began := make(chan error, 1)
	go func() { began <- m.Begin(dep) }()
	select {
	case err := <-began:
		t.Fatalf("begin returned %v before supporter committed", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.Begin(sup)
	if err := m.Commit(sup); err != nil {
		t.Fatal(err)
	}
	if err := <-began; err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(dep); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatal("dependent did not run")
	}
}

func TestBeginDependencySupporterAborts(t *testing.T) {
	m := newMem(t)
	sup := initiated(t, m, noop)
	dep := initiated(t, m, noop)
	m.FormDependency(xid.DepBD, sup, dep)
	began := make(chan error, 1)
	go func() { began <- m.Begin(dep) }()
	time.Sleep(20 * time.Millisecond)
	m.Abort(sup)
	if err := <-began; !errors.Is(err, ErrAborted) {
		t.Fatalf("begin = %v, want ErrAborted", err)
	}
	if m.StatusOf(dep) != xid.StatusAborted {
		t.Fatal("dependent not aborted with its begin-supporter")
	}
}

func TestLargeGroupCommit(t *testing.T) {
	m := newMem(t)
	const n = 16
	ids := make([]xid.TID, n)
	for i := range ids {
		ids[i] = initiated(t, m, func(tx *Tx) error {
			_, err := tx.Create([]byte("member"))
			return err
		})
		if i > 0 {
			if err := m.FormDependency(xid.DepGC, ids[i-1], ids[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Begin(ids...); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(ids[n/2]); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Commits != n || st.LogForces != 1 {
		t.Fatalf("commits=%d forces=%d, want %d/1", st.Commits, st.LogForces, n)
	}
}

func TestConcurrentCommitOfSameGroup(t *testing.T) {
	m := newMem(t)
	a := initiated(t, m, noop)
	b := initiated(t, m, noop)
	m.FormDependency(xid.DepGC, a, b)
	m.Begin(a, b)
	res := make(chan error, 2)
	go func() { res <- m.Commit(a) }()
	go func() { res <- m.Commit(b) }()
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Commits != 2 {
		t.Fatalf("commits = %d, want 2 (no double commit)", st.Commits)
	}
}
