package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/wal"
	"repro/internal/xid"
)

// This file is the participant half of ASSET's distributed group commit
// (package txcoord holds the coordinator half). A participant prepares the
// GC closure of the transactions named by the coordinator: it drives them
// to completion, resolves every blocking dependency the way the local
// commit protocol would, forces a TPrepare record, and moves the group to
// StatusPrepared — the yes vote. From that point the group's fate belongs
// to the coordinator alone: Decide applies the verdict, and a crash leaves
// the group in doubt in the WAL, to be resolved at recovery by querying
// the coordinator (the multi-shot "always learn the verdict" property).

// PrepareCtx votes on committing the GC closure of the given transactions
// as part of distributed group gid. A nil return is the yes vote: every
// member is completed, free of blocking dependencies, durably marked
// prepared, and untouchable by unilateral aborts. Any error is the no
// vote, and the local group (minus members owned by other groups) is
// aborted so the coordinator's abort decision has nothing left to do
// here. Retransmits are idempotent: preparing an already-prepared gid
// returns nil.
//
// Closing the preparing gate is the yes vote's escape point: parked
// duplicate votes (and Decide) proceed on it, so the TPrepare force must
// dominate the close on every successful path (ack-after-force, §14).
//asset:durable before=close
func (m *Manager) PrepareCtx(ctx context.Context, gid uint64, ids ...xid.TID) error {
	if gid == 0 {
		return fmt.Errorf("core: prepare: zero group id")
	}
	if len(ids) == 0 {
		return fmt.Errorf("core: prepare: empty transaction list")
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	m.mu.Lock()
	for {
		// Idempotent paths first: the gid is already prepared here (a
		// retransmitted vote request), mid-prepare on another driver, or
		// already decided.
		if _, ok := m.prepared[gid]; ok {
			m.mu.Unlock()
			return nil
		}
		if gate, ok := m.preparing[gid]; ok {
			// Another driver's vote (or a verdict) for this gid is
			// mid-flush. The gate always closes promptly — it is bounded
			// by one log force — so wait on it alone; selecting on a
			// possibly-done ctx here would relock and spin until the gate
			// closed anyway.
			m.mu.Unlock()
			<-gate
			m.mu.Lock()
			continue
		}
		if v, ok := m.verdicts[gid]; ok {
			m.mu.Unlock()
			if v {
				return fmt.Errorf("%w: group %d already committed", ErrAlreadyCommitted, gid)
			}
			return fmt.Errorf("%w: group %d already aborted", ErrAborted, gid)
		}
		if done != nil && ctx.Err() != nil {
			// The coordinator gave up: vote no and release the group.
			err := abortReason(fmt.Errorf("core: prepare cancelled: %w", context.Cause(ctx)))
			m.abortForVoteLocked(ids, err)
			m.mu.Unlock()
			return err
		}

		group, waitFor, err := m.examinePrepareLocked(ids)
		if err != nil {
			m.mu.Unlock()
			return err
		}
		if waitFor != nil {
			// Register waits-for edges while blocked, exactly as the commit
			// driver does, so cross-mechanism deadlocks are caught.
			var victim xid.TID
			for _, member := range group {
				if member.id != waitFor.id {
					if v, _ := m.waits.Add(member.id, waitFor.id); !v.IsNil() {
						victim = v
					}
				}
			}
			if !victim.IsNil() {
				if vt, ok := m.txns.Get(uint64(victim)); ok {
					m.abortLocked(vt, fmt.Errorf("%w: prepare-wait deadlock victim: %w", ErrAborted, ErrDeadlock))
				}
			}
			waitCh := waitFor.waitCh
			m.mu.Unlock()
			select {
			case <-waitCh:
			case <-done:
			}
			m.mu.Lock()
			for _, member := range group {
				if member.id != waitFor.id {
					m.waits.Remove(member.id, waitFor.id)
				}
			}
			continue
		}

		// All clear: this is the participant's commit point for the vote.
		// The TPrepare record must be durable before the yes vote escapes,
		// and the statuses must flip before the mutex is released around a
		// group-commit flush — every other path treats prepared as
		// untouchable. The preparing gate parks duplicate votes and Decide
		// until the flush resolves.
		tids := make([]xid.TID, len(group))
		for i, member := range group {
			tids[i] = member.id
			member.setSt(xid.StatusPrepared)
		}
		gate := make(chan struct{})
		m.preparing[gid] = gate
		if _, err := m.log.Append(&wal.Record{Type: wal.TPrepare, GID: gid, TIDs: tids}); err != nil {
			err = fmt.Errorf("core: prepare record append failed: %w", err)
			m.failPrepareLocked(gid, gate, group, err)
			m.mu.Unlock()
			return err
		}
		var flushErr error
		if m.cfg.BatchedCommits || m.cfg.GroupCommit {
			m.mu.Unlock()
			flushErr = m.log.Flush()
			m.mu.Lock()
		} else {
			flushErr = m.log.Flush()
		}
		if flushErr != nil {
			flushErr = fmt.Errorf("core: prepare flush failed: %w", flushErr)
			m.failPrepareLocked(gid, gate, group, flushErr)
			m.mu.Unlock()
			return flushErr
		}
		m.stats.logForces.Add(1)
		m.prepared[gid] = tids
		delete(m.preparing, gid)
		close(gate)
		m.mu.Unlock()
		return nil
	}
}

// examinePrepareLocked inspects the GC closure of the given roots. It
// returns (group, nil, nil) when every member is ready to prepare,
// (group, obstacle, nil) when the driver must wait, and a non-nil error —
// the no vote, with the group aborted as far as permitted — when the
// closure can never be prepared. Caller holds m.mu.
func (m *Manager) examinePrepareLocked(ids []xid.TID) ([]*txn, *obstacle, error) {
	for _, id := range ids {
		if _, err := m.lookup(id); err != nil {
			m.abortForVoteLocked(ids, fmt.Errorf("%w: prepare of unknown member %v", ErrAborted, id))
			return nil, nil, err
		}
	}
	closure := m.deps.GCClosure(ids...)
	group := make([]*txn, 0, len(closure))
	for _, mid := range closure {
		if member, ok := m.txns.Get(uint64(mid)); ok {
			group = append(group, member)
		}
	}
	for _, member := range group {
		switch member.st() {
		case xid.StatusAborting, xid.StatusAborted:
			reason := txnOutcome(member)
			m.abortForVoteLocked(ids, fmt.Errorf("%w: group member %v aborted", ErrAborted, member.id))
			return nil, nil, fmt.Errorf("%w: group member %v aborted: %w", ErrAborted, member.id, reason)
		case xid.StatusCommitted, xid.StatusCommitting:
			// The member's fate is already sealed locally; the group cannot
			// make the two-sided promise any more.
			m.abortForVoteLocked(ids, fmt.Errorf("%w: group member %v already committing", ErrAborted, member.id))
			return nil, nil, fmt.Errorf("%w: member %v", ErrAlreadyCommitted, member.id)
		case xid.StatusPrepared:
			// Owned by a different distributed group (same-gid retransmits
			// were handled before examine): refuse without touching it.
			m.abortForVoteLocked(ids, fmt.Errorf("%w: group member %v prepared under another group", ErrAborted, member.id))
			return nil, nil, fmt.Errorf("%w: member %v", ErrPrepared, member.id)
		case xid.StatusInitiated, xid.StatusRunning:
			return group, &obstacle{id: member.id, waitCh: member.done}, nil
		}
	}
	inGroup := make(map[xid.TID]bool, len(group))
	for _, member := range group {
		inGroup[member.id] = true
	}
	// Exclusion: a prepared transaction must win any EXC race (its partner
	// sees prepared as committing), so losing one here means voting no.
	for _, member := range group {
		for _, e := range m.deps.Outgoing(member.id) {
			if !e.Types.Has(xid.DepEXC) {
				continue
			}
			if p, ok := m.txns.Get(uint64(e.Other)); ok &&
				(p.st() == xid.StatusCommitting || p.st() == xid.StatusCommitted || p.st() == xid.StatusPrepared) {
				m.abortForVoteLocked(ids, fmt.Errorf("%w: excluded by committing partner %v", ErrAborted, p.id))
				return nil, nil, fmt.Errorf("%w: member %v excluded by committing partner %v", ErrAborted, member.id, p.id)
			}
		}
	}
	// Commit-blocking CD/AD edges to outside supporters must resolve
	// before the vote — a prepared transaction can wait for nobody.
	for _, member := range group {
		for _, e := range m.deps.Outgoing(member.id) {
			if !e.Types.CommitBlocking() || inGroup[e.Other] {
				continue
			}
			sup, ok := m.txns.Get(uint64(e.Other))
			if !ok || sup.st().Terminated() {
				continue
			}
			return group, &obstacle{id: sup.id, waitCh: sup.term}, nil
		}
	}
	return group, nil, nil
}

// abortForVoteLocked is the no-vote cleanup: abort every named transaction
// that is still abortable (prepared and committing members are left to
// their own protocols). Caller holds m.mu.
func (m *Manager) abortForVoteLocked(ids []xid.TID, reason error) {
	for _, id := range ids {
		if t, ok := m.txns.Get(uint64(id)); ok {
			m.abortLocked(t, reason)
		}
	}
}

// failPrepareLocked unwinds a prepare whose record could not be made
// durable: the statuses already turned prepared, so the abort must be the
// verdict-grade one. Caller holds m.mu.
func (m *Manager) failPrepareLocked(gid uint64, gate chan struct{}, group []*txn, cause error) {
	delete(m.preparing, gid)
	close(gate)
	for _, member := range group {
		m.abortCascadeLocked(member, abortReason(cause), true)
	}
}

// Decide applies the coordinator's verdict for group gid: commit installs
// the group atomically (including updates withheld since crash recovery),
// abort rolls it back. Duplicated and reordered deliveries are idempotent —
// a verdict that matches the recorded one returns nil. Deciding a group
// this manager never prepared returns ErrUnknownGroup.
func (m *Manager) Decide(gid uint64, commit bool) error {
	m.mu.Lock()
	for {
		gate, ok := m.preparing[gid]
		if !ok {
			break
		}
		// A vote is mid-flush; the verdict applies to its outcome.
		m.mu.Unlock()
		<-gate
		m.mu.Lock()
	}
	tids, ok := m.prepared[gid]
	if !ok {
		v, decided := m.verdicts[gid]
		m.mu.Unlock()
		if decided {
			if v == commit {
				return nil
			}
			if v {
				return fmt.Errorf("%w: group %d already committed", ErrAlreadyCommitted, gid)
			}
			return fmt.Errorf("%w: group %d already aborted", ErrAborted, gid)
		}
		return fmt.Errorf("%w: %d", ErrUnknownGroup, gid)
	}
	// Gate the verdict window: commitPreparedLocked may release mu around
	// a group-commit flush while m.prepared[gid] is still populated, and a
	// duplicate Decide arriving then (a coordinator delivery retry racing
	// a restarted participant's ResolveInDoubt) must not re-append the
	// commit record or re-run the commit epilogue. Duplicates — and
	// retransmitted votes — park on the gate and land on the idempotent
	// verdicts path once it closes.
	gate := make(chan struct{})
	m.preparing[gid] = gate
	group := make([]*txn, 0, len(tids))
	for _, id := range tids {
		if t, ok := m.txns.Get(uint64(id)); ok {
			group = append(group, t)
		}
	}
	var err error
	if commit {
		err = m.commitPreparedLocked(group)
	} else {
		reason := fmt.Errorf("%w: coordinator verdict: group %d aborted", ErrAborted, gid)
		for _, member := range group {
			m.abortCascadeLocked(member, reason, true)
		}
	}
	if err == nil {
		m.recordVerdictLocked(gid, commit)
		delete(m.prepared, gid)
	}
	delete(m.preparing, gid)
	close(gate)
	m.mu.Unlock()
	return err
}

// recordVerdictLocked remembers a decided group for idempotent verdict
// redelivery, pruning the oldest entries beyond the retention cap. A
// duplicate Decide for a pruned group reports ErrUnknownGroup, which
// coordinators treat as already delivered (nothing left to decide here).
// Caller holds m.mu.
func (m *Manager) recordVerdictLocked(gid uint64, commit bool) {
	if _, ok := m.verdicts[gid]; !ok {
		m.verdictOrder = append(m.verdictOrder, gid)
	}
	m.verdicts[gid] = commit
	limit := m.cfg.VerdictRetention
	if limit == 0 {
		limit = DefaultVerdictRetention
	}
	if limit < 0 {
		return
	}
	for len(m.verdictOrder) > limit {
		delete(m.verdicts, m.verdictOrder[0])
		m.verdictOrder = m.verdictOrder[1:]
	}
}

// commitPreparedLocked commits a prepared group on the coordinator's
// verdict. Unlike commitGroupLocked there are no obstacles left to check —
// the vote resolved them — but a recovered in-doubt member must install
// its withheld after-images before its locks drop. On a log failure the
// group stays prepared (still in doubt) so a later retry or restart can
// finish the job; it is never half-committed. Caller holds m.mu.
//asset:durable before=ReleaseAll,EscrowCommit
func (m *Manager) commitPreparedLocked(group []*txn) error {
	tids := make([]xid.TID, len(group))
	for i, member := range group {
		tids[i] = member.id
		member.setSt(xid.StatusCommitting)
	}
	if _, err := m.log.Append(&wal.Record{Type: wal.TCommit, TIDs: tids}); err != nil {
		for _, member := range group {
			member.setSt(xid.StatusPrepared)
		}
		return fmt.Errorf("core: verdict commit record append failed: %w", err)
	}
	var flushErr error
	if m.cfg.BatchedCommits || m.cfg.GroupCommit {
		m.mu.Unlock()
		flushErr = m.log.Flush()
		m.mu.Lock()
	} else {
		flushErr = m.log.Flush()
	}
	if flushErr != nil {
		for _, member := range group {
			member.setSt(xid.StatusPrepared)
		}
		return fmt.Errorf("core: verdict commit flush failed: %w", flushErr)
	}
	m.stats.logForces.Add(1)
	m.stats.groupSize.Add(uint64(len(group)))
	var forcedAborts []*txn
	for _, member := range group {
		for _, e := range m.deps.Incoming(member.id) {
			if e.Types.Has(xid.DepBAD) || e.Types.Has(xid.DepEXC) {
				if dependent, ok := m.txns.Get(uint64(e.Other)); ok {
					forcedAborts = append(forcedAborts, dependent)
				}
			}
		}
	}
	for _, member := range group {
		for _, op := range member.redo {
			m.installRedoLocked(op)
		}
		member.redo = nil
		for _, u := range member.undo {
			if u.kind == wal.KindDelete {
				m.dirty[u.oid] = dirtyDelete
			} else {
				m.dirty[u.oid] = dirtyUpsert
			}
		}
		member.undo = nil
		member.setSt(xid.StatusCommitted)
		m.deps.RemoveNode(member.id)
		m.locks.EscrowCommit(member.id)
		m.locks.ReleaseAll(member.id)
		m.waits.RemoveNode(member.id)
		m.releaseSlot(member)
		m.live.Add(-1)
		m.stats.commits.Add(1)
		member.closeDone()
		member.closeTerm()
		if m.cfg.ReapTerminated {
			m.txns.Delete(uint64(member.id))
		}
	}
	for _, dependent := range forcedAborts {
		m.abortLocked(dependent, fmt.Errorf("%w: excluded by a committed partner", ErrAborted))
	}
	m.cond.Broadcast()
	return nil
}

// installRedoLocked installs one withheld update of a recovered in-doubt
// transaction on its commit verdict. Caller holds m.mu.
func (m *Manager) installRedoLocked(op wal.RedoOp) {
	switch op.Kind {
	case wal.KindDelete:
		m.cache.Delete(op.OID)
		m.dirty[op.OID] = dirtyDelete
	case wal.KindDelta:
		base, _ := m.cache.Read(op.OID) // missing base reads as zero
		m.cache.Install(op.OID, wal.EncodeCounter(wal.DecodeCounter(base)+wal.DecodeCounter(op.After)))
		m.dirty[op.OID] = dirtyUpsert
	default: // modify/create
		m.cache.Install(op.OID, op.After)
		m.dirty[op.OID] = dirtyUpsert
	}
}

// InDoubt lists the distributed groups whose verdict this manager is
// still waiting for — both runtime-prepared groups and groups recovered
// in doubt from the WAL — in ascending gid order. The recovery driver
// resolves each by asking the coordinator and calling Decide.
func (m *Manager) InDoubt() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	gids := make([]uint64, 0, len(m.prepared))
	for gid := range m.prepared {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	return gids
}

// PreparedMembers returns the local members of a prepared (or in-doubt)
// group, or nil if the gid is unknown here.
func (m *Manager) PreparedMembers(gid uint64) []xid.TID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]xid.TID(nil), m.prepared[gid]...)
}

// installInDoubt rebuilds the prepared state of groups recovered in doubt:
// each member gets a descriptor in StatusPrepared holding its withheld
// redo images, and re-acquires the locks those updates imply (write locks
// for images, increment locks for deltas — so commutative traffic keeps
// flowing past an in-doubt counter). Called from Open, before the manager
// is visible to anyone; recovery is single-threaded, so every lock grant
// is immediate.
func (m *Manager) installInDoubt(st *wal.State) error {
	gids := make([]uint64, 0, len(st.InDoubt))
	for gid := range st.InDoubt {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		tids := st.InDoubt[gid]
		for _, id := range tids {
			t := newTxn(id, xid.NilTID, nil)
			t.redo = st.InDoubtOps[id]
			t.setSt(xid.StatusPrepared)
			t.closeDone() // the body finished before the vote, by definition
			m.txns.Put(uint64(id), t)
			m.live.Add(1)
			for _, op := range t.redo {
				mode := xid.OpWrite
				if op.Kind == wal.KindDelta {
					mode = xid.OpIncr
				}
				if err := m.locks.Lock(id, op.OID, mode); err != nil {
					return fmt.Errorf("core: reacquire in-doubt lock %v on %v: %w", id, op.OID, err)
				}
			}
		}
		m.prepared[gid] = append([]xid.TID(nil), tids...)
	}
	return nil
}
