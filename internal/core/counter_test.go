package core

import (
	"testing"
	"time"

	"repro/internal/wal"
	"repro/internal/xid"
)

func seedCounter(t *testing.T, m *Manager, v uint64) xid.OID {
	t.Helper()
	return seedObject(t, m, wal.EncodeCounter(v))
}

func counterValue(t *testing.T, m *Manager, oid xid.OID) uint64 {
	t.Helper()
	b, ok := m.Cache().Read(oid)
	if !ok {
		t.Fatalf("counter %v missing", oid)
	}
	return wal.DecodeCounter(b)
}

func TestAddBasic(t *testing.T) {
	m := newMem(t)
	oid := seedCounter(t, m, 10)
	runTxn(t, m, func(tx *Tx) error { return tx.Add(oid, 5) })
	if v := counterValue(t, m, oid); v != 15 {
		t.Fatalf("counter = %d, want 15", v)
	}
}

func TestAddConcurrentIncrementsDoNotBlock(t *testing.T) {
	m := newMem(t)
	oid := seedCounter(t, m, 0)
	// Two active transactions increment the same counter concurrently —
	// with write locks the second would block; increment locks commute.
	aAdded := make(chan struct{})
	hold := make(chan struct{})
	a, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Add(oid, 1); err != nil {
			return err
		}
		close(aAdded)
		<-hold
		return nil
	})
	bDone := make(chan error, 1)
	b, _ := m.Initiate(func(tx *Tx) error {
		<-aAdded
		err := tx.Add(oid, 2)
		bDone <- err
		return err
	})
	m.Begin(a, b)
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second increment blocked: OpIncr does not commute")
	}
	close(hold)
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if v := counterValue(t, m, oid); v != 3 {
		t.Fatalf("counter = %d, want 3", v)
	}
}

func TestAddLogicalUndoPreservesConcurrentIncrements(t *testing.T) {
	m := newMem(t)
	oid := seedCounter(t, m, 100)
	aAdded := make(chan struct{})
	bAdded := make(chan struct{})
	hold := make(chan struct{})
	a, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Add(oid, 7); err != nil {
			return err
		}
		close(aAdded)
		<-hold
		return nil
	})
	b, _ := m.Initiate(func(tx *Tx) error {
		<-aAdded
		if err := tx.Add(oid, 30); err != nil {
			return err
		}
		close(bAdded)
		<-hold
		return nil
	})
	m.Begin(a, b)
	<-bAdded
	// a aborts: only its +7 is undone; b's +30 survives (logical undo, not
	// a before-image install).
	if err := m.Abort(a); err != nil {
		t.Fatal(err)
	}
	close(hold)
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if v := counterValue(t, m, oid); v != 130 {
		t.Fatalf("counter = %d, want 130 (100 + 30, a's +7 undone logically)", v)
	}
}

func TestAddConflictsWithReadWrite(t *testing.T) {
	m := newMem(t)
	oid := seedCounter(t, m, 0)
	added := make(chan struct{})
	hold := make(chan struct{})
	a, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Add(oid, 1); err != nil {
			return err
		}
		close(added)
		<-hold
		return nil
	})
	m.Begin(a)
	<-added
	// A reader must block until the incrementing transaction terminates
	// (increments are not readable mid-flight).
	readDone := make(chan error, 1)
	r, _ := m.Initiate(func(tx *Tx) error {
		_, err := tx.ReadCounter(oid)
		readDone <- err
		return err
	})
	m.Begin(r)
	select {
	case <-readDone:
		t.Fatal("read proceeded against an active increment lock")
	case <-time.After(30 * time.Millisecond):
	}
	close(hold)
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}
	m.Commit(r)
}

func TestAddDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m := openDurable(t, dir)
	oid := seedCounter(t, m, 5)
	runTxn(t, m, func(tx *Tx) error { return tx.Add(oid, 10) })
	runTxn(t, m, func(tx *Tx) error { return tx.Add(oid, 20) })
	m.Close()
	m2 := openDurable(t, dir)
	if v := counterValue(t, m2, oid); v != 35 {
		t.Fatalf("recovered counter = %d, want 35", v)
	}
	// Deltas over a checkpointed base.
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runTxn(t, m2, func(tx *Tx) error { return tx.Add(oid, 1) })
	m2.Close()
	m3 := openDurable(t, dir)
	defer m3.Close()
	if v := counterValue(t, m3, oid); v != 36 {
		t.Fatalf("post-checkpoint recovered counter = %d, want 36", v)
	}
}

func TestAddWrongSizeObject(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("not-a-counter"))
	id, _ := m.Initiate(func(tx *Tx) error { return tx.Add(oid, 1) })
	m.Begin(id)
	if err := m.Commit(id); err == nil {
		t.Fatal("Add on non-counter object committed")
	}
}
