// Package htab provides the sharded chained hash table used by the
// transaction manager for its descriptor indexes (§4.1 of the paper places
// transaction descriptors "in a chained hash table based on the transaction
// tid", and double-hashes permit descriptors and dependency edges on the two
// tids involved).
//
// The table is generic over a uint64 key (TIDs and OIDs are both uint64
// kinds). Each shard is an independently latched chained table, so lookups
// by different transactions rarely contend.
package htab

import (
	"sync"
)

const defaultShards = 64

// entry is a node in a bucket chain.
type entry[V any] struct {
	key  uint64
	val  V
	next *entry[V]
}

type shard[V any] struct {
	//asset:latch order=30
	mu      sync.Mutex
	buckets []*entry[V]
	n       int
	// Pad each shard to a full cache line (mutex 8 + slice 24 + int 8 +
	// pad 24 = 64 bytes); adjacent shards otherwise false-share and
	// serialize under concurrency.
	_ [24]byte
}

// Map is a sharded chained hash table from uint64 keys to values of type V.
// Create one with New. All methods are safe for concurrent use.
type Map[V any] struct {
	shards []shard[V]
	mask   uint64
}

// New returns a table with the given shard count rounded up to a power of
// two; shards <= 0 selects a default suitable for many goroutines.
func New[V any](shards int) *Map[V] {
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Map[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i].buckets = make([]*entry[V], 8)
	}
	return m
}

// Hash exposes the table's 64-bit finalizer for callers that shard their
// own structures (the lock manager hashes oids onto lock-table shards with
// it, so an object's lock shard and its htab shard derive from one
// function).
func Hash(x uint64) uint64 { return mix(x) }

// mix is a 64-bit finalizer (splitmix64) spreading sequential tids across
// shards and buckets.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (m *Map[V]) shardFor(key uint64) *shard[V] {
	return &m.shards[mix(key)&m.mask]
}

// Get returns the value stored under key and whether it was present.
func (m *Map[V]) Get(key uint64) (V, bool) {
	s := m.shardFor(key)
	h := mix(key)
	s.mu.Lock()
	for e := s.buckets[h%uint64(len(s.buckets))]; e != nil; e = e.next {
		if e.key == key {
			v := e.val
			s.mu.Unlock()
			return v, true
		}
	}
	s.mu.Unlock()
	var zero V
	return zero, false
}

// Put stores val under key, replacing any existing value. It reports whether
// the key was newly inserted.
func (m *Map[V]) Put(key uint64, val V) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := mix(key) % uint64(len(s.buckets))
	for e := s.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			e.val = val
			return false
		}
	}
	s.buckets[b] = &entry[V]{key: key, val: val, next: s.buckets[b]}
	s.n++
	if s.n > 4*len(s.buckets) {
		s.grow()
	}
	return true
}

// PutIfAbsent stores val under key only if the key is absent. It returns the
// value now present and whether this call inserted it.
func (m *Map[V]) PutIfAbsent(key uint64, val V) (V, bool) {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := mix(key) % uint64(len(s.buckets))
	for e := s.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			return e.val, false
		}
	}
	s.buckets[b] = &entry[V]{key: key, val: val, next: s.buckets[b]}
	s.n++
	if s.n > 4*len(s.buckets) {
		s.grow()
	}
	return val, true
}

// Delete removes key and reports whether it was present.
func (m *Map[V]) Delete(key uint64) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := mix(key) % uint64(len(s.buckets))
	for p := &s.buckets[b]; *p != nil; p = &(*p).next {
		if (*p).key == key {
			*p = (*p).next
			s.n--
			return true
		}
	}
	return false
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += s.n
		s.mu.Unlock()
	}
	return n
}

// Range calls fn for each entry until fn returns false. The snapshot per
// shard is consistent; entries inserted or removed concurrently in other
// shards may or may not be observed.
func (m *Map[V]) Range(fn func(key uint64, val V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		// Copy the shard's entries so fn can call back into the map.
		type kv struct {
			k uint64
			v V
		}
		var snap []kv
		for _, head := range s.buckets {
			for e := head; e != nil; e = e.next {
				snap = append(snap, kv{e.key, e.val})
			}
		}
		s.mu.Unlock()
		for _, e := range snap {
			if !fn(e.k, e.v) {
				return
			}
		}
	}
}

// grow doubles the shard's bucket array. Caller holds s.mu.
func (s *shard[V]) grow() {
	old := s.buckets
	s.buckets = make([]*entry[V], 2*len(old))
	for _, head := range old {
		for e := head; e != nil; {
			next := e.next
			b := mix(e.key) % uint64(len(s.buckets))
			e.next = s.buckets[b]
			s.buckets[b] = e
			e = next
		}
	}
}

// Pair is a two-key index entry for structures "doubly hashed on the tid of
// the two transactions involved" (permit descriptors and dependency edges):
// the same value is reachable from either tid.
type Pair struct{ A, B uint64 }

// PairKey combines two ids into one 64-bit key for use in a Map. Collisions
// between distinct pairs are acceptable for the Map's bucket placement but
// not for identity, so callers store the full Pair in the value.
func PairKey(a, b uint64) uint64 { return mix(a) ^ mix(b)*0x9e3779b97f4a7c15 }
