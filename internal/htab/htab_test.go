package htab

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	m := New[string](4)
	if _, ok := m.Get(1); ok {
		t.Fatal("Get on empty table returned ok")
	}
	if !m.Put(1, "a") {
		t.Fatal("first Put reported replace")
	}
	if m.Put(1, "b") {
		t.Fatal("second Put reported insert")
	}
	if v, ok := m.Get(1); !ok || v != "b" {
		t.Fatalf("Get(1) = %q,%v; want b,true", v, ok)
	}
	if !m.Delete(1) {
		t.Fatal("Delete of present key returned false")
	}
	if m.Delete(1) {
		t.Fatal("Delete of absent key returned true")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestPutIfAbsent(t *testing.T) {
	m := New[int](1)
	if v, inserted := m.PutIfAbsent(7, 10); !inserted || v != 10 {
		t.Fatalf("first PutIfAbsent = %d,%v", v, inserted)
	}
	if v, inserted := m.PutIfAbsent(7, 20); inserted || v != 10 {
		t.Fatalf("second PutIfAbsent = %d,%v; want 10,false", v, inserted)
	}
}

func TestGrowKeepsEntries(t *testing.T) {
	m := New[uint64](1)
	const n = 10_000
	for i := uint64(1); i <= n; i++ {
		m.Put(i, i*2)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := m.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v after grow", i, v, ok)
		}
	}
}

func TestRange(t *testing.T) {
	m := New[int](8)
	want := map[uint64]int{}
	for i := uint64(1); i <= 100; i++ {
		m.Put(i, int(i))
		want[i] = int(i)
	}
	got := map[uint64]int{}
	m.Range(func(k uint64, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range got[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	count := 0
	m.Range(func(uint64, int) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Range with early stop visited %d, want 1", count)
	}
}

// TestQuickMatchesMap property-tests the table against the built-in map
// under a random operation sequence.
func TestQuickMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New[uint64](2)
		ref := map[uint64]uint64{}
		for i, op := range ops {
			key := uint64(op%64) + 1
			switch op % 3 {
			case 0:
				m.Put(key, uint64(i))
				ref[key] = uint64(i)
			case 1:
				delete(ref, key)
				m.Delete(key)
			case 2:
				v, ok := m.Get(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := m.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	m := New[int](0)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(512) + 1)
				switch rng.Intn(3) {
				case 0:
					m.Put(k, i)
				case 1:
					m.Get(k)
				case 2:
					m.Delete(k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// The table must still be internally consistent: every Range entry is
	// Get-able and counted by Len.
	n := 0
	m.Range(func(k uint64, _ int) bool {
		if _, ok := m.Get(k); !ok {
			t.Errorf("Range key %d not Get-able", k)
		}
		n++
		return true
	})
	if n != m.Len() {
		t.Fatalf("Range saw %d entries, Len = %d", n, m.Len())
	}
}

func TestPairKeySymmetryIsNotRequired(t *testing.T) {
	// PairKey is an index key, not an identity; distinct pairs may collide
	// but equal (ordered) pairs must map equally.
	if PairKey(1, 2) != PairKey(1, 2) {
		t.Fatal("PairKey not deterministic")
	}
}
