package latch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExclusiveMutualExclusion(t *testing.T) {
	var l Latch
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates => no mutual exclusion)", counter, workers*iters)
	}
}

func TestSharedReadersCoexist(t *testing.T) {
	var l Latch
	var inside atomic.Int32
	var peak atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.RLock()
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inside.Add(-1)
			l.RUnlock()
		}()
	}
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("peak concurrent readers = %d, want >= 2", peak.Load())
	}
}

func TestWriterExcludesReaders(t *testing.T) {
	var l Latch
	l.Lock()
	if l.TryRLock() {
		t.Fatal("TryRLock succeeded while X held")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded while X held")
	}
	l.Unlock()
	if !l.TryRLock() {
		t.Fatal("TryRLock failed on free latch")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded while S held")
	}
	l.RUnlock()
}

// TestWriterPriority verifies the X-bit blocks new readers while a writer
// waits, the starvation-avoidance property §4.1 calls out.
func TestWriterPriority(t *testing.T) {
	var l Latch
	l.RLock() // existing reader

	writerIn := make(chan struct{})
	go func() {
		l.Lock() // sets X-bit, waits for the reader to drain
		close(writerIn)
		l.Unlock()
	}()

	// Wait until the writer has published the X-bit.
	deadline := time.Now().Add(2 * time.Second)
	for !l.Held() || l.TryRLock() {
		// If TryRLock succeeded the X-bit is not yet set; undo and retry.
		if l.word.Load()&sMask > 1 {
			l.RUnlock()
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never set X-bit")
		}
		time.Sleep(time.Millisecond)
	}

	// New readers must now be blocked.
	if l.TryRLock() {
		t.Fatal("new reader admitted while writer waiting")
	}
	l.RUnlock() // drain the original reader; writer proceeds
	select {
	case <-writerIn:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never acquired after readers drained")
	}
}

func TestUpgrade(t *testing.T) {
	var l Latch
	l.RLock()
	if !l.Upgrade() {
		t.Fatal("Upgrade failed with sole reader")
	}
	if l.TryRLock() {
		t.Fatal("reader admitted after upgrade")
	}
	l.Unlock()

	// Upgrade must fail when a writer already waits.
	l.RLock()
	l.word.Store(l.word.Load() | xBit) // simulate a waiting writer
	if l.Upgrade() {
		t.Fatal("Upgrade succeeded despite waiting writer")
	}
	l.word.Store(0)
}

func TestUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unheld latch did not panic")
		}
	}()
	var l Latch
	l.Unlock()
}

func TestRUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RUnlock of unheld latch did not panic")
		}
	}()
	var l Latch
	l.RUnlock()
}

func TestMixedReadersWriters(t *testing.T) {
	var l Latch
	shared := make([]int, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Lock()
				for j := range shared {
					shared[j]++
				}
				l.Unlock()
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.RLock()
				v := shared[0]
				for _, x := range shared {
					if x != v {
						panic("torn read under S latch")
					}
				}
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared[0] != 4*500 {
		t.Fatalf("shared[0] = %d, want %d", shared[0], 4*500)
	}
}
