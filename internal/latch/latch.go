// Package latch implements the short-term S/X latches of the EOS storage
// manager (§4.1 of the paper). A latch protects a cached object or control
// structure for the duration of a single read or write; it is held much more
// briefly than a lock and is never subject to deadlock detection.
//
// Per the paper, a latch is built from an atomic test-and-set word holding an
// S-counter (number of shared holders) and an X-bit (a writer holds or is
// waiting for the latch). The X-bit blocks new readers, preventing
// starvation of update transactions. A process that cannot set the latch
// spins on it with a time-varying backoff.
package latch

import (
	"runtime"
	"sync/atomic"
)

// Word layout: bit 63 = X-bit (exclusive held or wanted), bits 0..62 =
// S-counter (number of shared holders).
const (
	xBit  = uint64(1) << 63
	sMask = xBit - 1
)

// Latch is a shared/exclusive spin latch. The zero value is an unheld latch
// ready for use.
type Latch struct {
	word atomic.Uint64
}

// backoff yields the processor with an escalating delay so spinners do not
// monopolize a core. spin is the caller's iteration count.
func backoff(spin int) {
	if spin < 8 {
		return // brief busy-wait first; latch hold times are tiny
	}
	runtime.Gosched()
}

// RLock acquires the latch in shared (S) mode, blocking while a writer holds
// or awaits the latch.
func (l *Latch) RLock() {
	for spin := 0; ; spin++ {
		w := l.word.Load()
		if w&xBit == 0 {
			if l.word.CompareAndSwap(w, w+1) {
				return
			}
			continue
		}
		backoff(spin)
	}
}

// TryRLock attempts to acquire the latch in shared mode without blocking and
// reports whether it succeeded.
func (l *Latch) TryRLock() bool {
	w := l.word.Load()
	return w&xBit == 0 && l.word.CompareAndSwap(w, w+1)
}

// RUnlock releases one shared hold. It panics if the latch is not held in
// shared mode, since that is always a programming error.
func (l *Latch) RUnlock() {
	for {
		w := l.word.Load()
		if w&sMask == 0 {
			panic("latch: RUnlock of latch not held in S mode")
		}
		if l.word.CompareAndSwap(w, w-1) {
			return
		}
	}
}

// Lock acquires the latch in exclusive (X) mode. It first sets the X-bit so
// new readers are blocked, then waits for existing readers to drain.
func (l *Latch) Lock() {
	// Set the X-bit, contending with other writers.
	for spin := 0; ; spin++ {
		w := l.word.Load()
		if w&xBit == 0 {
			if l.word.CompareAndSwap(w, w|xBit) {
				break
			}
			continue
		}
		backoff(spin)
	}
	// Wait for the S-counter to drain.
	for spin := 0; l.word.Load()&sMask != 0; spin++ {
		backoff(spin)
	}
}

// TryLock attempts to acquire the latch in exclusive mode without blocking
// and reports whether it succeeded.
func (l *Latch) TryLock() bool {
	return l.word.CompareAndSwap(0, xBit)
}

// Unlock releases an exclusive hold. It panics if the latch is not held in
// exclusive mode.
func (l *Latch) Unlock() {
	for {
		w := l.word.Load()
		if w&xBit == 0 {
			panic("latch: Unlock of latch not held in X mode")
		}
		if l.word.CompareAndSwap(w, w&^xBit) {
			return
		}
	}
}

// Upgrade converts a shared hold into an exclusive hold. It returns false —
// leaving the shared hold intact — if another writer is already waiting, in
// which case the caller must release and re-acquire to avoid deadlocking
// against that writer.
func (l *Latch) Upgrade() bool {
	// Claim the X-bit while still holding our S count.
	for {
		w := l.word.Load()
		if w&xBit != 0 {
			return false
		}
		if l.word.CompareAndSwap(w, w|xBit) {
			break
		}
	}
	// Drop our own S hold, then wait for other readers to drain.
	l.word.Add(^uint64(0)) // -1 on the S-counter
	for spin := 0; l.word.Load()&sMask != 0; spin++ {
		backoff(spin)
	}
	return true
}

// Held reports whether any goroutine currently holds the latch in either
// mode. It is advisory, for tests and assertions only.
func (l *Latch) Held() bool { return l.word.Load() != 0 }
