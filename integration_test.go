package asset_test

import (
	"errors"
	"fmt"
	"testing"

	asset "repro"
	"repro/models"
	"repro/odb"
	"repro/workflow"
)

// TestIntegrationOrderPipeline drives every layer together: a durable
// database hosting an odb schema (collection + hash index + B-tree +
// escrow counters), operated through sagas and a workflow, crashed in the
// middle, recovered, and verified.
func TestIntegrationOrderPipeline(t *testing.T) {
	dir := t.TempDir()
	m, err := asset.Open(asset.Config{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := odb.Init(m)
	if err != nil {
		t.Fatal(err)
	}

	// Schema: an inventory counter, an orders collection, a customer
	// index, and a B-tree over order ids.
	var stock odb.Counter
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		if stock, err = odb.NewCounter(tx, 10); err != nil {
			return err
		}
		if _, err := db.Collection(tx, "orders"); err != nil {
			return err
		}
		if _, err := db.Index(tx, "by-customer", 8); err != nil {
			return err
		}
		_, err = db.BTree(tx, "by-order-id", 8)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// placeOrder is a saga: reserve stock, then record the order in the
	// collection and both indexes atomically.
	placeOrder := func(orderID, customer string, qty uint64, recordOK bool) *models.SagaResult {
		res, err := models.NewSaga(m).
			Step("reserve",
				func(tx *asset.Tx) error {
					have, err := stock.Value(tx)
					if err != nil {
						return err
					}
					if have < qty {
						return fmt.Errorf("stock %d < %d", have, qty)
					}
					return stock.Sub(tx, qty)
				},
				func(tx *asset.Tx) error { return stock.Add(tx, qty) }).
			Step("record",
				func(tx *asset.Tx) error {
					if !recordOK {
						return errors.New("recording subsystem down")
					}
					c, err := db.Collection(tx, "orders")
					if err != nil {
						return err
					}
					oid, err := c.Insert(tx, []byte(orderID+" x"+fmt.Sprint(qty)))
					if err != nil {
						return err
					}
					ix, err := db.Index(tx, "by-customer", 8)
					if err != nil {
						return err
					}
					if err := ix.Set(tx, customer, oid); err != nil {
						return err
					}
					bt, err := db.BTree(tx, "by-order-id", 8)
					if err != nil {
						return err
					}
					return bt.Set(tx, orderID, oid)
				},
				nil).
			Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	if res := placeOrder("ord-001", "alice", 3, true); res.Err() != nil {
		t.Fatalf("order 1: %v", res.Err())
	}
	// Order 2 fails at recording: the stock reservation is compensated.
	if res := placeOrder("ord-002", "bob", 2, false); res.Err() == nil {
		t.Fatal("order 2 should have failed")
	}
	if res := placeOrder("ord-003", "carol", 4, true); res.Err() != nil {
		t.Fatalf("order 3: %v", res.Err())
	}

	// A workflow books a rush order with an optional gift-wrap step.
	wres, err := workflow.New("rush").
		Step(workflow.Task{
			Name:   "rush-order",
			Action: func(tx *asset.Tx) error { return stock.Sub(tx, 1) },
			Compensate: func(tx *asset.Tx) error {
				return stock.Add(tx, 1)
			}}).
		Step(workflow.Task{
			Name:   "gift-wrap",
			Action: func(tx *asset.Tx) error { return errors.New("no wrap paper") },
		}).Optional().
		Run(m)
	if err != nil || wres.Err() != nil {
		t.Fatalf("workflow: %v %v", err, wres.Err())
	}

	// Crash (no checkpoint, no clean close) and recover.
	m.Close()
	m2, err := asset.Open(asset.Config{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	db2, err := odb.Init(m2)
	if err != nil {
		t.Fatal(err)
	}

	if err := models.Atomic(m2, func(tx *asset.Tx) error {
		// Stock: 10 - 3 (ord-001) - 4 (ord-003) - 1 (rush) = 2; ord-002
		// fully compensated.
		have, err := stock.Value(tx)
		if err != nil {
			return err
		}
		if have != 2 {
			return fmt.Errorf("stock = %d, want 2", have)
		}
		c, err := db2.Collection(tx, "orders")
		if err != nil {
			return err
		}
		if n, _ := c.Len(tx); n != 2 {
			return fmt.Errorf("orders = %d, want 2", n)
		}
		ix, err := db2.Index(tx, "by-customer", 8)
		if err != nil {
			return err
		}
		if _, err := ix.Get(tx, "alice"); err != nil {
			return fmt.Errorf("alice's order lost: %w", err)
		}
		if _, err := ix.Get(tx, "bob"); !errors.Is(err, odb.ErrNotFound) {
			return fmt.Errorf("bob's failed order indexed: %v", err)
		}
		bt, err := db2.BTree(tx, "by-order-id", 8)
		if err != nil {
			return err
		}
		var ids []string
		bt.Range(tx, "", "", func(k string, _ asset.OID) bool {
			ids = append(ids, k)
			return true
		})
		if fmt.Sprint(ids) != "[ord-001 ord-003]" {
			return fmt.Errorf("order ids = %v", ids)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Checkpoint, restart again, verify once more (checkpoint path).
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, err := asset.Open(asset.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	db3, err := odb.Init(m3)
	if err != nil {
		t.Fatal(err)
	}
	if err := models.Atomic(m3, func(tx *asset.Tx) error {
		have, err := stock.Value(tx)
		if err != nil {
			return err
		}
		if have != 2 {
			return fmt.Errorf("post-checkpoint stock = %d", have)
		}
		c, err := db3.Collection(tx, "orders")
		if err != nil {
			return err
		}
		if n, _ := c.Len(tx); n != 2 {
			return fmt.Errorf("post-checkpoint orders = %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationNestedSplitCooperate exercises the less common model
// combinations against one manager: a nested transaction whose parent
// splits off work, while a cooperating observer is permitted to watch the
// shared object.
func TestIntegrationNestedSplitCooperate(t *testing.T) {
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var design, journal asset.OID
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		if design, err = tx.Create([]byte("....")); err != nil {
			return err
		}
		journal, err = tx.Create([]byte(""))
		return err
	})

	observed := make(chan string, 1)
	observerReady := make(chan struct{})
	editDone := make(chan struct{})

	// The editor: a nested transaction edits the design via a child, then
	// splits the journal entry off so it commits even if the edit aborts.
	var journalTxn asset.TID
	editor, _ := m.Initiate(func(tx *asset.Tx) error {
		if err := models.Sub(tx, func(c *asset.Tx) error {
			return c.Write(design, []byte("EDIT"))
		}); err != nil {
			return err
		}
		if err := tx.Write(journal, []byte("edit started")); err != nil {
			return err
		}
		var err error
		journalTxn, err = models.Split(tx, func(s *asset.Tx) error { return nil }, journal)
		if err != nil {
			return err
		}
		// Let the observer see the in-progress design.
		if err := m.Permit(tx.ID(), asset.NilTID, []asset.OID{design}, asset.OpRead); err != nil {
			return err
		}
		close(observerReady)
		<-editDone
		return nil
	})
	observer, _ := m.Initiate(func(tx *asset.Tx) error {
		<-observerReady
		data, err := tx.Read(design) // permitted despite the editor's lock
		if err != nil {
			return err
		}
		observed <- string(data)
		return nil
	})
	m.Begin(editor, observer)
	if err := m.Wait(observer); err != nil {
		t.Fatal(err)
	}
	if got := <-observed; got != "EDIT" {
		t.Fatalf("observer saw %q", got)
	}
	m.Commit(observer)

	// The editor changes its mind: the design edit rolls back, but the
	// split-off journal entry commits.
	close(editDone)
	m.Wait(editor)
	if err := m.Commit(journalTxn); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(editor); err != nil {
		t.Fatal(err)
	}
	d, _ := m.Cache().Read(design)
	j, _ := m.Cache().Read(journal)
	if string(d) != "...." {
		t.Fatalf("design = %q, want rollback", d)
	}
	if string(j) != "edit started" {
		t.Fatalf("journal = %q, want the split-off entry", j)
	}
}
