// Integration tests of the public API: invariants that must survive any
// interleaving of concurrent transactions, crashes, and model compositions.
package asset_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	asset "repro"
	"repro/models"
)

func newMem(t *testing.T) *asset.Manager {
	t.Helper()
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func putU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func getU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// TestMoneyConservation: concurrent transfers between accounts — with
// deadlock-victim retries — never create or destroy money, under both
// commit and random aborts.
func TestMoneyConservation(t *testing.T) {
	m := newMem(t)
	const nAccounts = 8
	const initial = 1000
	accounts := make([]asset.OID, nAccounts)
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := range accounts {
			var err error
			if accounts[i], err = tx.Create(putU64(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				from := accounts[rng.Intn(nAccounts)]
				to := accounts[rng.Intn(nAccounts)]
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(50) + 1)
				abortIt := rng.Intn(4) == 0
				err := models.AtomicRetry(m, 20, func(tx *asset.Tx) error {
					fb, err := tx.Read(from)
					if err != nil {
						return err
					}
					bal := getU64(fb)
					if bal < amount {
						return nil // skip, not enough funds
					}
					if err := tx.Write(from, putU64(bal-amount)); err != nil {
						return err
					}
					tb, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(to, putU64(getU64(tb)+amount)); err != nil {
						return err
					}
					if abortIt {
						return fmt.Errorf("deliberate abort")
					}
					return nil
				})
				if err != nil && !errors.Is(err, asset.ErrAborted) {
					errCh <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	var total uint64
	for _, acct := range accounts {
		b, ok := m.Cache().Read(acct)
		if !ok {
			t.Fatalf("account %v vanished", acct)
		}
		total += getU64(b)
	}
	if total != nAccounts*initial {
		t.Fatalf("money not conserved: %d, want %d", total, nAccounts*initial)
	}
}

// TestMoneyConservationAcrossCrash: same invariant with durability and a
// crash in the middle.
func TestMoneyConservationAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	m, err := asset.Open(asset.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const nAccounts = 4
	const initial = 500
	accounts := make([]asset.OID, nAccounts)
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := range accounts {
			var err error
			if accounts[i], err = tx.Create(putU64(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		from, to := rng.Intn(nAccounts), rng.Intn(nAccounts)
		if from == to {
			continue
		}
		models.Atomic(m, func(tx *asset.Tx) error {
			fb, _ := tx.Read(accounts[from])
			if getU64(fb) < 10 {
				return nil
			}
			if err := tx.Write(accounts[from], putU64(getU64(fb)-10)); err != nil {
				return err
			}
			tb, _ := tx.Read(accounts[to])
			return tx.Write(accounts[to], putU64(getU64(tb)+10))
		})
	}
	// Crash with one transfer in flight.
	hold := make(chan struct{})
	started := make(chan struct{})
	id, _ := m.Initiate(func(tx *asset.Tx) error {
		fb, _ := tx.Read(accounts[0])
		tx.Write(accounts[0], putU64(getU64(fb)-10))
		close(started)
		<-hold // never writes the matching credit
		return nil
	})
	m.Begin(id)
	<-started
	m.Close()
	close(hold)

	m2, err := asset.Open(asset.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var total uint64
	for _, acct := range accounts {
		b, ok := m2.Cache().Read(acct)
		if !ok {
			t.Fatalf("account %v lost in crash", acct)
		}
		total += getU64(b)
	}
	if total != nAccounts*initial {
		t.Fatalf("money not conserved across crash: %d, want %d", total, nAccounts*initial)
	}
}

// TestPublicErrorValues: the re-exported errors are the ones the manager
// actually returns (errors.Is must work through the facade).
func TestPublicErrorValues(t *testing.T) {
	m := newMem(t)
	id, _ := m.Initiate(func(tx *asset.Tx) error { return errors.New("no") })
	if err := m.Commit(id); !errors.Is(err, asset.ErrNotBegun) {
		t.Fatalf("commit before begin = %v", err)
	}
	m.Begin(id)
	if err := m.Commit(id); !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("commit of failed txn = %v", err)
	}
	if err := m.Begin(999); !errors.Is(err, asset.ErrUnknownTxn) {
		t.Fatalf("begin unknown = %v", err)
	}
	ok := runOK(t, m)
	if err := m.Abort(ok); !errors.Is(err, asset.ErrAlreadyCommitted) {
		t.Fatalf("abort committed = %v", err)
	}
	a, _ := m.Initiate(func(tx *asset.Tx) error { return nil })
	b, _ := m.Initiate(func(tx *asset.Tx) error { return nil })
	m.FormDependency(asset.CD, a, b)
	if err := m.FormDependency(asset.CD, b, a); !errors.Is(err, asset.ErrDependencyCycle) {
		t.Fatalf("cycle = %v", err)
	}
}

func runOK(t *testing.T, m *asset.Manager) asset.TID {
	t.Helper()
	id, err := m.Initiate(func(tx *asset.Tx) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	m.Begin(id)
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestStatusVisibility: statuses progress exactly through the §2.1
// life-cycle as observed through the public API.
func TestStatusVisibility(t *testing.T) {
	m := newMem(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	id, _ := m.Initiate(func(tx *asset.Tx) error {
		close(started)
		<-gate
		return nil
	})
	if got := m.StatusOf(id); got != asset.StatusInitiated {
		t.Fatalf("status = %v", got)
	}
	m.Begin(id)
	<-started
	if got := m.StatusOf(id); got != asset.StatusRunning {
		t.Fatalf("status = %v", got)
	}
	close(gate)
	m.Wait(id)
	if got := m.StatusOf(id); got != asset.StatusCompleted {
		t.Fatalf("status = %v", got)
	}
	m.Commit(id)
	if got := m.StatusOf(id); got != asset.StatusCommitted {
		t.Fatalf("status = %v", got)
	}
}

// TestQuickSerializableHistories: random pairs of RMW transactions on a
// small object set always yield a final state reachable by *some* serial
// order. With two increment-only transactions over disjoint and shared
// objects, the commuting final state is unique — so any committed result
// must equal the serial sum of committed transactions.
func TestQuickSerializableHistories(t *testing.T) {
	f := func(ops []struct {
		Obj   uint8
		Abort bool
	}) bool {
		m, err := asset.Open(asset.Config{})
		if err != nil {
			return false
		}
		defer m.Close()
		const nObjs = 4
		oids := make([]asset.OID, nObjs)
		if err := models.Atomic(m, func(tx *asset.Tx) error {
			for i := range oids {
				var err error
				if oids[i], err = tx.Create(putU64(0)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return false
		}
		want := make([]uint64, nObjs)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, op := range ops {
			op := op
			wg.Add(1)
			go func() {
				defer wg.Done()
				idx := int(op.Obj) % nObjs
				err := models.AtomicRetry(m, 50, func(tx *asset.Tx) error {
					b, err := tx.Read(oids[idx])
					if err != nil {
						return err
					}
					if err := tx.Write(oids[idx], putU64(getU64(b)+1)); err != nil {
						return err
					}
					if op.Abort {
						return errors.New("abort")
					}
					return nil
				})
				if err == nil {
					mu.Lock()
					want[idx]++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		for i, oid := range oids {
			b, _ := m.Cache().Read(oid)
			if getU64(b) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
