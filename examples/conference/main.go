// Conference: a faithful rendering of the paper's appendix program — the
// X_conference workflow. Person X flies NY→LA for a conference June 11–14,
// 1994: flights are tried in the preference order Delta, United, American;
// the Equator hotel is mandatory (its failure cancels the trip and
// compensates the flight); the car rental races National against Avis and
// is optional.
//
//	go run ./examples/conference                 # happy path
//	go run ./examples/conference -full delta,united
//	go run ./examples/conference -full hotel     # trip cancelled
//	go run ./examples/conference -full national,avis
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	asset "repro"
	"repro/models"
	"repro/workflow"
)

func main() {
	full := flag.String("full", "", "comma list of sold-out providers: delta,united,american,hotel,national,avis")
	flag.Parse()
	soldOut := map[string]bool{}
	for _, p := range strings.Split(*full, ",") {
		if p != "" {
			soldOut[strings.ToLower(strings.TrimSpace(p))] = true
		}
	}

	m, err := asset.Open(asset.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// The reservation book: one object per reservation kind.
	var flight, hotel, car asset.OID
	err = models.Atomic(m, func(tx *asset.Tx) error {
		if flight, err = tx.Create([]byte("none")); err != nil {
			return err
		}
		if hotel, err = tx.Create([]byte("none")); err != nil {
			return err
		}
		car, err = tx.Create([]byte("none"))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	reserve := func(provider string, oid asset.OID, detail string) workflow.Task {
		return workflow.Task{
			Name: provider,
			Action: func(tx *asset.Tx) error {
				if soldOut[strings.ToLower(provider)] {
					return fmt.Errorf("%s: no availability 6/11–6/14", provider)
				}
				return tx.Write(oid, []byte(provider+" "+detail))
			},
			// cancel_*_reservation of the appendix.
			Compensate: func(tx *asset.Tx) error { return tx.Write(oid, []byte("none")) },
		}
	}

	trip := workflow.New("X_conference").
		// "X prefers to fly on Delta, United, or American in that order."
		Alternatives("flight",
			reserve("Delta", flight, "NY→LA 6/11, LA→NY 6/14"),
			reserve("United", flight, "NY→LA 6/11, LA→NY 6/14"),
			reserve("American", flight, "NY→LA 6/11, LA→NY 6/14")).
		// "X must stay at hotel Equator" — required; failure compensates
		// the flight already booked.
		Step(reserve("Hotel", hotel, "Equator 6/11–6/14")).
		// "The car must be rented from Avis or National" — both attempted
		// in parallel, whichever completes first wins; optional, since "X
		// can take public transportation".
		Race("car-rental",
			reserve("National", car, "corporate rate"),
			reserve("Avis", car, "corporate rate")).Optional()

	res, err := trip.Run(m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("activity:", map[bool]string{true: "SUCCEEDED", false: "FAILED"}[res.Err() == nil])
	for _, step := range res.Steps {
		status := "skipped"
		if step.Committed {
			status = "committed via " + step.Chosen
		}
		fmt.Printf("  step %-10s %s\n", step.Step+":", status)
	}
	if res.Err() != nil {
		fmt.Printf("  failed at %q; compensated: %v\n", res.FailedStep, res.Compensated)
	}
	show := func(label string, oid asset.OID) {
		b, _ := m.Cache().Read(oid)
		fmt.Printf("  %-7s %s\n", label+":", b)
	}
	fmt.Println("reservation book:")
	show("flight", flight)
	show("hotel", hotel)
	show("car", car)
}
