// Orders: an order-fulfilment pipeline as a saga (§3.1.6). Each step —
// reserve stock, charge the account, create the shipment — is an ACID
// transaction that commits immediately, so a long-running order never
// blocks other orders; a failing step triggers the compensations of the
// committed steps in reverse order.
//
//	go run ./examples/orders
package main

import (
	"errors"
	"fmt"
	"log"

	asset "repro"
	"repro/models"
	"repro/odb"
)

type shop struct {
	db        *odb.Database
	stock     odb.BoundedCounter // widgets on hand; escrow lower bound 0 rejects over-reservation
	balance   odb.BoundedCounter // customer account, cents; escrow lower bound 0 rejects overdrafts
	shipments *odb.Collection
}

func main() {
	m, err := asset.Open(asset.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	db, err := odb.Init(m)
	if err != nil {
		log.Fatal(err)
	}
	s := &shop{db: db}
	err = models.Atomic(m, func(tx *asset.Tx) error {
		if s.stock, err = odb.NewBoundedCounter(tx, 5, 0, 1_000); err != nil {
			return err
		}
		if s.balance, err = odb.NewBoundedCounter(tx, 300, 0, 1_000_000); err != nil {
			return err
		}
		s.shipments, err = db.Collection(tx, "shipments")
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four orders: the first succeeds, the second fails at shipping (and
	// compensates the charge and the stock reservation), the third
	// succeeds again — proving the compensations restored a clean state —
	// and the fourth asks for more widgets than remain, so the stock
	// counter's escrow lower bound rejects the reservation outright.
	for i, o := range []struct {
		id          string
		qty, price  uint64
		shippingOK  bool
		description string
	}{
		{"order-1", 2, 100, true, "plain success"},
		{"order-2", 1, 100, false, "carrier rejects: compensate charge + stock"},
		{"order-3", 1, 100, true, "succeeds on the compensated state"},
		{"order-4", 5, 100, true, "insufficient stock: escrow bound rejects"},
	} {
		res := placeOrder(m, s, o.id, o.qty, o.price, o.shippingOK)
		fmt.Printf("%d. %-8s (%s)\n   committed=%v compensated=%v err=%v\n",
			i+1, o.id, o.description, res.Committed, res.Compensated, res.Err())
	}

	err = models.Atomic(m, func(tx *asset.Tx) error {
		stock, _ := s.stock.Value(tx)
		bal, _ := s.balance.Value(tx)
		n, _ := s.shipments.Len(tx)
		fmt.Printf("\nfinal state: stock=%d balance=%d shipments=%d\n", stock, bal, n)
		// 5 - (2+1) shipped = 2; 300 - 2*100 - 1*100 = 0.
		if stock != 2 || bal != 0 || n != 2 {
			return errors.New("books do not balance")
		}
		fmt.Println("books balance: every failed order was fully compensated")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func placeOrder(m *asset.Manager, s *shop, id string, qty, price uint64, shippingOK bool) *models.SagaResult {
	saga := models.NewSaga(m).
		Step("reserve-stock",
			// No read-then-check: a read lock on the hot stock counter
			// would conflict with every other order's increment grant. The
			// escrow lower bound IS the check — a Sub that could drive the
			// counter below 0 fails with asset.ErrEscrow.
			func(tx *asset.Tx) error { return s.stock.Sub(tx, qty) },
			func(tx *asset.Tx) error { return s.stock.Add(tx, qty) }).
		Step("charge",
			func(tx *asset.Tx) error { return s.balance.Sub(tx, qty*price) },
			func(tx *asset.Tx) error { return s.balance.Add(tx, qty*price) }).
		Step("ship",
			func(tx *asset.Tx) error {
				if !shippingOK {
					return errors.New("carrier rejected the parcel")
				}
				c, err := s.db.Collection(tx, "shipments")
				if err != nil {
					return err
				}
				_, err = c.Insert(tx, []byte(id))
				return err
			},
			nil) // final step needs no compensation (paper: tn has no ct_n)
	res, err := saga.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
