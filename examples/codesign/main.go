// Codesign: the §3.2.1 cooperative-design scenario. Two designers work on
// the same design object inside long-lived transactions. Permits let their
// conflicting writes interleave (the "ping-pong"); a group-commit
// dependency ensures the shared design is committed only when both accept
// the final state — or discarded entirely.
//
//	go run ./examples/codesign            # both accept: committed
//	go run ./examples/codesign -reject    # one rejects: everything undone
package main

import (
	"flag"
	"fmt"
	"log"

	asset "repro"
	"repro/models"
)

func main() {
	reject := flag.Bool("reject", false, "the reviewer rejects the final design")
	flag.Parse()

	m, err := asset.Open(asset.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// The shared design object: an 8-cell "blueprint".
	var design asset.OID
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		design, err = tx.Create([]byte("........"))
		return err
	}); err != nil {
		log.Fatal(err)
	}
	show := func(stage string) {
		b, _ := m.Cache().Read(design)
		fmt.Printf("  %-22s %q\n", stage+":", b)
	}

	// Hand-over tokens: each designer edits only on their turn, the
	// permits make the conflicting lock grants possible at all.
	aliceTurn := make(chan struct{}, 1)
	bobTurn := make(chan struct{}, 1)

	edit := func(tx *asset.Tx, pos int, glyph byte) error {
		return tx.Update(design, func(b []byte) []byte {
			b[pos] = glyph
			return b
		})
	}

	alice, err := m.Initiate(func(tx *asset.Tx) error {
		for round := 0; round < 2; round++ {
			<-aliceTurn
			if err := edit(tx, round*2, 'A'); err != nil {
				return err
			}
			show(fmt.Sprintf("alice edits (round %d)", round+1))
			bobTurn <- struct{}{}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := m.Initiate(func(tx *asset.Tx) error {
		for round := 0; round < 2; round++ {
			<-bobTurn
			if err := edit(tx, round*2+1, 'B'); err != nil {
				return err
			}
			show(fmt.Sprintf("bob edits   (round %d)", round+1))
			aliceTurn <- struct{}{}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The workspace forms mutual permits on the design and binds the two
	// fates with a GC dependency: both commit or neither does.
	ws := models.NewWorkspace(m, design)
	if err := ws.Admit(alice); err != nil {
		log.Fatal(err)
	}
	if err := ws.Admit(bob); err != nil {
		log.Fatal(err)
	}

	fmt.Println("two designers interleave conflicting writes on one object:")
	if err := m.Begin(alice, bob); err != nil {
		log.Fatal(err)
	}
	aliceTurn <- struct{}{}
	if err := m.Wait(alice); err != nil {
		log.Fatal(err)
	}
	if err := m.Wait(bob); err != nil {
		log.Fatal(err)
	}

	if *reject {
		fmt.Println("review: bob rejects the design — the whole session aborts:")
		if err := ws.AbortAll(); err != nil {
			log.Fatal(err)
		}
		show("after group abort")
		return
	}
	fmt.Println("review: both designers accept — the session group-commits:")
	if err := ws.CommitAll(); err != nil {
		log.Fatal(err)
	}
	show("after group commit")
	st := m.Stats()
	fmt.Printf("  (%d transactions, %d commit record/log force)\n", st.Commits, st.LogForces)
}
