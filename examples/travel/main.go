// Travel: the paper's §3.1.4 nested transaction — a trip whose flight and
// hotel reservations are subtransactions, stored in an Ode-like object
// database. A failing reservation aborts the whole trip; committed trips
// appear atomically.
//
//	go run ./examples/travel
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	asset "repro"
	"repro/models"
	"repro/odb"
)

// inventory seeds seat/room availability counters.
type inventory struct {
	seats odb.Counter
	rooms odb.Counter
}

func main() {
	m, err := asset.Open(asset.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	db, err := odb.Init(m)
	if err != nil {
		log.Fatal(err)
	}

	var inv inventory
	var trips *odb.Collection
	err = models.Atomic(m, func(tx *asset.Tx) error {
		if inv.seats, err = odb.NewCounter(tx, 3); err != nil {
			return err
		}
		if inv.rooms, err = odb.NewCounter(tx, 2); err != nil {
			return err
		}
		trips, err = db.Collection(tx, "trips")
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	booked, cancelled := 0, 0
	for traveller := 1; traveller <= 5; traveller++ {
		name := fmt.Sprintf("traveller-%d", traveller)
		err := models.Atomic(m, func(tx *asset.Tx) error {
			// Subtransaction 1: the airline reservation.
			if err := models.Sub(tx, func(c *asset.Tx) error {
				return take(c, inv.seats, "seat")
			}); err != nil {
				return fmt.Errorf("flight: %w", err)
			}
			// Subtransaction 2: the hotel reservation. Its failure must
			// also undo the flight reservation (it was delegated to us).
			if err := models.Sub(tx, func(c *asset.Tx) error {
				return take(c, inv.rooms, "room")
			}); err != nil {
				return fmt.Errorf("hotel: %w", err)
			}
			// Both reservations held: record the trip.
			c, err := db.Collection(tx, "trips")
			if err != nil {
				return err
			}
			_, err = c.Insert(tx, []byte(name+": flight+hotel"))
			return err
		})
		if err != nil {
			cancelled++
			fmt.Printf("%s: trip cancelled (%v)\n", name, err)
		} else {
			booked++
			fmt.Printf("%s: trip booked\n", name)
		}
		_ = rng
	}

	err = models.Atomic(m, func(tx *asset.Tx) error {
		seats, _ := inv.seats.Value(tx)
		rooms, _ := inv.rooms.Value(tx)
		n, _ := trips.Len(tx)
		fmt.Printf("\nbooked=%d cancelled=%d | seats left=%d rooms left=%d trips recorded=%d\n",
			booked, cancelled, seats, rooms, n)
		if uint64(booked) != 3-seats && uint64(booked) != 2-rooms {
			return errors.New("inventory inconsistent with bookings")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// take decrements an availability counter, failing when it is exhausted
// (reads conflict with concurrent increments, so the check is stable).
func take(tx *asset.Tx, c odb.Counter, what string) error {
	v, err := c.Value(tx)
	if err != nil {
		return err
	}
	if v == 0 {
		return fmt.Errorf("no %s available", what)
	}
	return c.Sub(tx, 1)
}
