// Catalog: a durable library catalog on the Ode-like object layer — typed
// records (gob), a B-tree for ordered title lookups, an escrow counter for
// loan statistics, and a cursor-stability scan that reports while loans
// keep committing. Restart the process against the same directory to see
// recovery (state persists via the WAL + page store).
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"
	"os"

	asset "repro"
	"repro/models"
	"repro/odb"
)

type book struct {
	Title  string
	Author string
	Year   int
	OnLoan bool
}

func main() {
	dir, err := os.MkdirTemp("", "asset-catalog-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	m, err := asset.Open(asset.Config{Dir: dir, BatchedCommits: true})
	if err != nil {
		log.Fatal(err)
	}
	db, err := odb.Init(m)
	if err != nil {
		log.Fatal(err)
	}

	// Load the catalog: records in a collection, titles in a B-tree.
	var loans odb.Counter
	titles := []book{
		{"A Relational Model of Data", "Codd", 1970, false},
		{"Sagas", "Garcia-Molina & Salem", 1987, false},
		{"ASSET: Extended Transactions", "Biliris et al.", 1994, false},
		{"Nested Transactions", "Moss", 1981, false},
		{"Split-Transactions", "Pu, Kaiser & Hutchinson", 1988, false},
	}
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		shelf, err := db.Collection(tx, "shelf")
		if err != nil {
			return err
		}
		bt, err := db.BTree(tx, "titles", 8)
		if err != nil {
			return err
		}
		for _, b := range titles {
			data, err := odb.Marshal(b)
			if err != nil {
				return err
			}
			oid, err := shelf.Insert(tx, data)
			if err != nil {
				return err
			}
			if err := bt.Set(tx, b.Title, oid); err != nil {
				return err
			}
		}
		loans, err = odb.NewCounter(tx, 0)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Ordered range query: titles N..S.
	fmt.Println("titles in [N, T):")
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		bt, err := db.BTree(tx, "titles", 8)
		if err != nil {
			return err
		}
		return bt.Range(tx, "N", "T", func(title string, oid asset.OID) bool {
			b, err := odb.Get[book](tx, oid)
			if err != nil {
				return false
			}
			fmt.Printf("  %-32s %s (%d)\n", title, b.Author, b.Year)
			return true
		})
	}); err != nil {
		log.Fatal(err)
	}

	// Check a book out (typed read-modify-write + escrow loan counter).
	checkout := func(title string) error {
		return models.AtomicRetry(m, 10, func(tx *asset.Tx) error {
			bt, err := db.BTree(tx, "titles", 8)
			if err != nil {
				return err
			}
			oid, err := bt.Get(tx, title)
			if err != nil {
				return err
			}
			if err := odb.Modify(tx, oid, func(b *book) error {
				if b.OnLoan {
					return fmt.Errorf("%q already on loan", title)
				}
				b.OnLoan = true
				return nil
			}); err != nil {
				return err
			}
			return loans.Add(tx, 1)
		})
	}
	for _, title := range []string{"Sagas", "Nested Transactions"} {
		if err := checkout(title); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checked out %q\n", title)
	}
	// A second checkout of the same book aborts cleanly.
	if err := checkout("Sagas"); err != nil {
		fmt.Printf("second checkout rejected: %v\n", err)
	}

	// A cursor-stability inventory scan: writers are not blocked behind it.
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		shelf, err := db.Collection(tx, "shelf")
		if err != nil {
			return err
		}
		oids, err := shelf.OIDs(tx)
		if err != nil {
			return err
		}
		onLoan := 0
		if err := models.Scan(tx, models.CursorStability, oids, func(oid asset.OID, data []byte) error {
			var b book
			if err := odb.Unmarshal(data, &b); err != nil {
				return err
			}
			if b.OnLoan {
				onLoan++
			}
			return nil
		}); err != nil {
			return err
		}
		total, err := loans.Value(tx)
		if err != nil {
			return err
		}
		fmt.Printf("inventory: %d of %d on loan (%d loans ever)\n", onLoan, len(oids), total)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Crash and recover: the catalog survives.
	m.Close()
	m2, err := asset.Open(asset.Config{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer m2.Close()
	db2, err := odb.Init(m2)
	if err != nil {
		log.Fatal(err)
	}
	if err := models.Atomic(m2, func(tx *asset.Tx) error {
		bt, err := db2.BTree(tx, "titles", 8)
		if err != nil {
			return err
		}
		oid, err := bt.Get(tx, "Sagas")
		if err != nil {
			return err
		}
		b, err := odb.Get[book](tx, oid)
		if err != nil {
			return err
		}
		fmt.Printf("after restart: %q on loan = %v\n", b.Title, b.OnLoan)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
