// Quickstart: open a durable ASSET database, run an atomic transaction,
// survive a "crash", and verify recovery — the smallest end-to-end tour of
// the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	asset "repro"
	"repro/models"
)

func main() {
	dir, err := os.MkdirTemp("", "asset-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open a durable database: WAL + page-store checkpoints live in dir.
	m, err := asset.Open(asset.Config{Dir: dir, SyncCommits: true})
	if err != nil {
		log.Fatal(err)
	}

	// The raw primitives: initiate registers the transaction, begin starts
	// it on its own goroutine, commit blocks until the body completes and
	// then makes its effects durable.
	var greeting asset.OID
	t, err := m.Initiate(func(tx *asset.Tx) error {
		var err error
		greeting, err = tx.Create([]byte("hello, extended transactions"))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Begin(t); err != nil {
		log.Fatal(err)
	}
	if err := m.Commit(t); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed object %v\n", greeting)

	// The models package wraps that boilerplate; an error return aborts
	// and rolls back automatically.
	err = models.Atomic(m, func(tx *asset.Tx) error {
		if err := tx.Write(greeting, []byte("this write will be rolled back")); err != nil {
			return err
		}
		return fmt.Errorf("changed my mind")
	})
	fmt.Printf("aborted transaction returned: %v\n", err)

	// Simulate a crash: close without checkpointing and reopen. Recovery
	// replays the log; the committed create survives, the abort stays
	// undone.
	m.Close()
	m2, err := asset.Open(asset.Config{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer m2.Close()
	data, ok := m2.Cache().Read(greeting)
	fmt.Printf("after recovery: %q (found=%v)\n", data, ok)

	// A two-step saga with a compensation, for flavour.
	res, err := models.NewSaga(m2).
		Step("reserve",
			func(tx *asset.Tx) error { return tx.Write(greeting, []byte("reserved")) },
			func(tx *asset.Tx) error { return tx.Write(greeting, []byte("released")) }).
		Step("confirm",
			func(tx *asset.Tx) error { return fmt.Errorf("confirmation failed") }, nil).
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saga outcome: %v\n", res.Err())
	data, _ = m2.Cache().Read(greeting)
	fmt.Printf("after compensation: %q\n", data)

	if _, err := fmt.Println("wal is at", filepath.Join(dir, "wal.log"), "(inspect with cmd/walinspect)"); err != nil {
		log.Fatal(err)
	}
}
