// Banksplit: the §3.1.5 split/join model on a banking workload. A batch
// transaction reconciles many accounts; partway through it *splits off*
// the accounts it has finished, so they can commit early (releasing their
// locks to tellers), while the rest of the batch continues — and can still
// abort without dragging down the finished part. A second phase *joins* a
// helper transaction's work back into the batch.
//
// The branch also keeps a reconciled-accounts counter with escrow bounds:
// the batch increments it once per finished account, and the split
// delegates both the increment grant and its in-flight escrow reservation
// to the early-committing transaction — so when the rest of the batch
// aborts, only the split-off increments survive.
//
//	go run ./examples/banksplit
package main

import (
	"fmt"
	"log"

	asset "repro"
	"repro/models"
	"repro/odb"
)

func main() {
	m, err := asset.Open(asset.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// Ten accounts with 100 units each, plus a branch-level counter of
	// reconciled accounts (escrow bounds [0, nAccounts]).
	const nAccounts = 10
	accounts := make([]asset.OID, nAccounts)
	var reconciled odb.BoundedCounter
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := range accounts {
			var err error
			if accounts[i], err = tx.Create([]byte("bal=100")); err != nil {
				return err
			}
		}
		var err error
		reconciled, err = odb.NewBoundedCounter(tx, 0, 0, nAccounts)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	balance := func(i int) string {
		b, _ := m.Cache().Read(accounts[i])
		return string(b)
	}

	fmt.Println("phase 1: batch reconciliation splits off its finished half")
	var early asset.TID
	batch, err := m.Initiate(func(tx *asset.Tx) error {
		// Reconcile the first half, bumping the reconciled counter per
		// account under a commuting increment grant.
		for i := 0; i < nAccounts/2; i++ {
			if err := tx.Write(accounts[i], []byte("bal=100 reconciled")); err != nil {
				return err
			}
			if err := reconciled.Add(tx, 1); err != nil {
				return err
			}
		}
		// Split: delegate the finished accounts — and the counter, whose
		// in-flight +5 escrow reservation moves with its grant — to a new
		// transaction that can commit immediately.
		var err error
		early, err = models.Split(tx, func(s *asset.Tx) error { return nil },
			append(append([]asset.OID{}, accounts[:nAccounts/2]...), reconciled.Oid)...)
		if err != nil {
			return err
		}
		// Keep working on the second half...
		for i := nAccounts / 2; i < nAccounts; i++ {
			if err := tx.Write(accounts[i], []byte("bal=100 SUSPECT")); err != nil {
				return err
			}
			if err := reconciled.Add(tx, 1); err != nil {
				return err
			}
		}
		// ...and discover a problem: the second half must be re-done.
		return fmt.Errorf("inconsistency found in accounts %d-%d", nAccounts/2, nAccounts-1)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Begin(batch); err != nil {
		log.Fatal(err)
	}
	m.Wait(batch) // aborts: the function returned an error
	if err := m.Commit(early); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  account 0 (split off, committed): %q\n", balance(0))
	fmt.Printf("  account 9 (kept, rolled back):    %q\n", balance(9))
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		n, err := reconciled.Value(tx)
		if err != nil {
			return err
		}
		// The delegated +5 committed with `early`; the batch's own +5 was
		// discarded when it aborted.
		fmt.Printf("  reconciled counter: %d (split-off increments only)\n", n)
		if n != nAccounts/2 {
			return fmt.Errorf("want %d reconciled, got %d", nAccounts/2, n)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 2: a helper's work is joined into the main transaction")
	mainTxn, err := m.Initiate(func(tx *asset.Tx) error {
		return tx.Write(accounts[9], []byte("bal=100 audited"))
	})
	if err != nil {
		log.Fatal(err)
	}
	var helper asset.TID
	spawner, err := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Write(accounts[8], []byte("bal=100 audited")); err != nil {
			return err
		}
		// Hand the audited account over to a fresh transaction...
		var err error
		helper, err = models.Split(tx, func(s *asset.Tx) error { return nil }, accounts[8])
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Begin(mainTxn, spawner); err != nil {
		log.Fatal(err)
	}
	if err := m.Wait(spawner); err != nil {
		log.Fatal(err)
	}
	m.Commit(spawner)
	// ...and join that transaction into mainTxn: its update now commits or
	// aborts with mainTxn.
	if err := models.Join(m, helper, mainTxn); err != nil {
		log.Fatal(err)
	}
	if err := m.Commit(mainTxn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  account 8 (joined, committed with main): %q\n", balance(8))
	fmt.Printf("  account 9 (main's own write):            %q\n", balance(9))

	st := m.Stats()
	fmt.Printf("stats: %d commits, %d aborts\n", st.Commits, st.Aborts)
}
