// Command assetlint runs the project's concurrency-discipline checkers
// (internal/analysis) over the module. Exit status: 0 clean, 1 findings,
// 2 load or usage error.
//
// Usage:
//
//	assetlint [-json] [-checkers latchorder,errcmp] [packages]
//
// Package patterns are module-relative: "./..." (the default) analyzes
// everything; "./internal/lock" or "internal/lock" restricts output to that
// package. The whole module is always loaded — transitive latch-order checks
// need cross-package summaries — so patterns only filter which packages'
// diagnostics are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	checkers := flag.String("checkers", "", "comma-separated checkers to run (default: all of "+strings.Join(analysis.CheckerNames, ",")+")")
	flag.Parse()

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "assetlint:", err)
		os.Exit(2)
	}

	var enabled []string
	if *checkers != "" {
		for _, c := range strings.Split(*checkers, ",") {
			if c = strings.TrimSpace(c); c != "" {
				enabled = append(enabled, c)
			}
		}
	}
	r, err := analysis.NewRunner(mod, enabled)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assetlint:", err)
		os.Exit(2)
	}

	pkgs, err := selectPackages(mod, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "assetlint:", err)
		os.Exit(2)
	}
	diags := r.Run(pkgs...)

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, mod.Root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "assetlint:", err)
			os.Exit(2)
		}
	} else {
		analysis.WriteText(os.Stdout, mod.Root, diags)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectPackages maps command-line patterns to loaded module packages.
func selectPackages(mod *analysis.Module, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return nil, nil // Runner default: every module package
	}
	var out []*analysis.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, p := range mod.Packages {
			if matchPattern(mod, pat, p) {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no module packages", pat)
		}
	}
	return out, nil
}

// matchPattern implements the useful subset of go-tool package patterns:
// "./...", "dir/...", "./dir", "dir", and full import paths.
func matchPattern(mod *analysis.Module, pat string, p *analysis.Package) bool {
	rel, err := filepath.Rel(mod.Root, p.Dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." || pat == "" || pat == "." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/") ||
			p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/")
	}
	return rel == pat || p.Path == pat
}
