// Command assetd serves an ASSET database over the wire protocol:
// clients (package repro/client) connect over TCP, open leased sessions,
// and run extended transactions remotely with exactly-once commit
// decisions.
//
// Usage:
//
//	assetd -addr :7468                   # in-memory database
//	assetd -addr :7468 -dir mydb -sync   # durable database (recovered at start)
//	assetd -addr :7468 -dir mydb -sync -coord mydb/coord
//	                                     # + distributed-commit coordinator role
//
// With -coord the node also hosts a transaction coordinator: its durable
// decision log lives in the given directory, and the server answers
// verdict queries (OpVerdictQuery) from participants recovering in-doubt
// prepared groups — querying an undecided group forces a durable abort
// (presumed abort), so the answer is always final.
//
// The server keeps terminated transaction descriptors (reaping off) so a
// reconnecting client can learn the verdict of a commit whose response
// was lost; restart the server to shed them.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	asset "repro"
	"repro/internal/server"
	"repro/internal/txcoord"
)

func main() {
	addr := flag.String("addr", "localhost:7468", "listen address")
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	sync := flag.Bool("sync", false, "fsync on every commit")
	group := flag.Bool("group", false, "group commit (batched log forces)")
	lease := flag.Duration("lease", 2*time.Second, "session lease TTL (heartbeat deadline)")
	maxLive := flag.Int("max-live", 0, "admission limit on concurrently running transactions (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "per-transaction deadline enforced by the watchdog (0 = none)")
	coordDir := flag.String("coord", "", "host a distributed-commit coordinator with its decision log in this directory")
	flag.Parse()

	var coord *txcoord.Coordinator
	if *coordDir != "" {
		var err error
		if coord, err = txcoord.Open(nil, *coordDir); err != nil {
			fmt.Fprintln(os.Stderr, "assetd:", err)
			os.Exit(1)
		}
	}

	m, err := asset.Open(asset.Config{
		Dir:         *dir,
		SyncCommits: *sync,
		GroupCommit: *group,
		MaxLive:     *maxLive,
		TxnDeadline: *deadline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "assetd:", err)
		os.Exit(1)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		m.Close()
		fmt.Fprintln(os.Stderr, "assetd:", err)
		os.Exit(1)
	}
	scfg := server.Config{LeaseTTL: *lease}
	if coord != nil {
		scfg.Verdicts = coord
	}
	srv := server.Serve(m, lis, scfg)
	role := ""
	if coord != nil {
		role = fmt.Sprintf(", coordinator log in %s", *coordDir)
	}
	fmt.Printf("assetd: serving on %s (lease %v, epoch %#x%s)\n", lis.Addr(), *lease, srv.Epoch(), role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("assetd: shutting down")
	srv.Close()
	if coord != nil {
		if err := coord.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "assetd:", err)
		}
	}
	if err := m.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "assetd:", err)
		os.Exit(1)
	}
}
