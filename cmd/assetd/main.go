// Command assetd serves an ASSET database over the wire protocol:
// clients (package repro/client) connect over TCP, open leased sessions,
// and run extended transactions remotely with exactly-once commit
// decisions.
//
// Usage:
//
//	assetd -addr :7468                   # in-memory database
//	assetd -addr :7468 -dir mydb -sync   # durable database (recovered at start)
//
// The server keeps terminated transaction descriptors (reaping off) so a
// reconnecting client can learn the verdict of a commit whose response
// was lost; restart the server to shed them.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	asset "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7468", "listen address")
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	sync := flag.Bool("sync", false, "fsync on every commit")
	group := flag.Bool("group", false, "group commit (batched log forces)")
	lease := flag.Duration("lease", 2*time.Second, "session lease TTL (heartbeat deadline)")
	maxLive := flag.Int("max-live", 0, "admission limit on concurrently running transactions (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "per-transaction deadline enforced by the watchdog (0 = none)")
	flag.Parse()

	m, err := asset.Open(asset.Config{
		Dir:         *dir,
		SyncCommits: *sync,
		GroupCommit: *group,
		MaxLive:     *maxLive,
		TxnDeadline: *deadline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "assetd:", err)
		os.Exit(1)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		m.Close()
		fmt.Fprintln(os.Stderr, "assetd:", err)
		os.Exit(1)
	}
	srv := server.Serve(m, lis, server.Config{LeaseTTL: *lease})
	fmt.Printf("assetd: serving on %s (lease %v, epoch %#x)\n", lis.Addr(), *lease, srv.Epoch())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("assetd: shutting down")
	srv.Close()
	if err := m.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "assetd:", err)
		os.Exit(1)
	}
}
