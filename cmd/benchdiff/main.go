// Command benchdiff compares two assetbench baseline files and fails on
// regressions. It understands every BENCH_*.json shape the bench
// harness emits — a flat array of sweep points, or an object of named
// sub-sweeps — and classifies each numeric field by name into a metric
// with a direction (locks_per_sec: higher is better; p99_us: lower is
// better) or a series coordinate (workers, shards, arm). Two points in
// the same series are compared metric by metric; a shared metric that
// moved more than the threshold (default 15%) in the losing direction
// is a regression and the exit status is 1.
//
// Usage:
//
//	benchdiff [-threshold 0.15] old.json new.json
//
// Series present in only one file are reported but never fail the run:
// a new sweep arm is not a regression. CI runs benchdiff as an advisory
// job against the committed baselines; the thresholds are deliberately
// loose because bench numbers from shared runners wobble.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 0.15, "relative regression threshold (0.15 = 15%)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold 0.15] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldB, err := loadBaseline(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newB, err := loadBaseline(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	rep := diff(oldB, newB, *threshold)
	for _, line := range rep.lines {
		fmt.Println(line)
	}
	fmt.Printf("benchdiff: %d series compared, %d only-old, %d only-new, %d regressions (threshold %.0f%%)\n",
		rep.compared, rep.onlyOld, rep.onlyNew, len(rep.regressions), *threshold*100)
	if len(rep.regressions) > 0 {
		os.Exit(1)
	}
}

// baseline is one parsed BENCH_*.json: series key -> metric -> value.
type baseline struct {
	bench  string
	series map[string]map[string]float64
}

// point is one sweep sample with arbitrary fields.
type point map[string]any

// benchFile is the on-disk shape; points is either []point or a named
// map of sub-sweeps (the walgc baseline).
type benchFile struct {
	Bench  string          `json:"bench"`
	Points json.RawMessage `json:"points"`
}

func loadBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	b := &baseline{bench: bf.Bench, series: make(map[string]map[string]float64)}
	var flat []point
	if err := json.Unmarshal(bf.Points, &flat); err == nil {
		b.add("", flat)
		return b, nil
	}
	var grouped map[string][]point
	if err := json.Unmarshal(bf.Points, &grouped); err != nil {
		return nil, fmt.Errorf("%s: points is neither an array nor named sub-sweeps: %w", path, err)
	}
	for name, pts := range grouped {
		b.add(name, pts)
	}
	return b, nil
}

// add indexes one sweep's points under their series keys.
func (b *baseline) add(group string, pts []point) {
	for _, p := range pts {
		key, metrics := classify(p)
		if group != "" {
			key = group + "/" + key
		}
		if len(metrics) == 0 {
			continue
		}
		b.series[key] = metrics
	}
}

// ignoredFields are per-point counters that are neither a series
// coordinate nor a throughput/latency metric: they vary run to run
// (deadlock counts, shed counts) without being a regression by
// themselves — the goodput metrics already price them in.
var ignoredFields = map[string]bool{
	"errors": true, "faults": true, "deadlocks": true, "retries": true, "sheds": true,
}

// classify splits a point's fields into the series key (identity
// coordinates, joined name=value) and its directed metrics.
func classify(p point) (string, map[string]float64) {
	var keys []string
	metrics := make(map[string]float64)
	for name, v := range p {
		if ignoredFields[name] {
			continue
		}
		if metricDir(name) != 0 {
			if f, ok := v.(float64); ok {
				metrics[name] = f
			}
			continue
		}
		keys = append(keys, fmt.Sprintf("%s=%v", name, v))
	}
	sort.Strings(keys)
	return strings.Join(keys, " "), metrics
}

// metricDir returns +1 for higher-is-better metrics, -1 for
// lower-is-better, 0 for a non-metric (series coordinate) field.
func metricDir(name string) int {
	switch {
	case strings.HasSuffix(name, "_per_sec"),
		strings.HasSuffix(name, "_per_fsync"),
		strings.HasSuffix(name, "_throughput"),
		name == "throughput", name == "goodput", name == "ops":
		return +1
	case strings.HasSuffix(name, "_us"), strings.HasSuffix(name, "_ms"),
		strings.HasPrefix(name, "p50"), strings.HasPrefix(name, "p99"),
		strings.Contains(name, "latency"):
		return -1
	}
	return 0
}

// report is the outcome of one comparison.
type report struct {
	lines       []string
	regressions []string
	compared    int
	onlyOld     int
	onlyNew     int
}

// diff compares every series the two baselines share.
func diff(oldB, newB *baseline, threshold float64) *report {
	rep := &report{}
	var keys []string
	for key := range oldB.series {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		oldM := oldB.series[key]
		newM, ok := newB.series[key]
		if !ok {
			rep.onlyOld++
			continue
		}
		rep.compared++
		var names []string
		for name := range oldM {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ov := oldM[name]
			nv, ok := newM[name]
			if !ok || ov == 0 {
				continue
			}
			rel := (nv - ov) / ov
			worse := rel*float64(metricDir(name)) < -threshold
			if worse {
				line := fmt.Sprintf("REGRESSION %s: %s %.4g -> %.4g (%+.1f%%)", key, name, ov, nv, rel*100)
				rep.regressions = append(rep.regressions, line)
				rep.lines = append(rep.lines, line)
			}
		}
	}
	for key := range newB.series {
		if _, ok := oldB.series[key]; !ok {
			rep.onlyNew++
		}
	}
	return rep
}
