package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `{
  "bench": "lock",
  "points": [
    {"dist": "disjoint", "workers": 1, "locks_per_sec": 1000000, "p99_us": 2.0},
    {"dist": "disjoint", "workers": 2, "locks_per_sec": 2000000, "p99_us": 4.0},
    {"dist": "hot", "workers": 4, "locks_per_sec": 500000, "p99_us": 8.0, "errors": 3}
  ]
}`

func load(t *testing.T, body string) *baseline {
	t.Helper()
	b, err := loadBaseline(writeTemp(t, "b.json", body))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A synthetic 20% throughput drop in one shared series must be flagged
// under the default 15% threshold; a 10% drop must not.
func TestThroughputRegression(t *testing.T) {
	oldB := load(t, oldJSON)
	newB := load(t, `{
  "bench": "lock",
  "points": [
    {"dist": "disjoint", "workers": 1, "locks_per_sec": 800000, "p99_us": 2.0},
    {"dist": "disjoint", "workers": 2, "locks_per_sec": 1800000, "p99_us": 4.0},
    {"dist": "hot", "workers": 4, "locks_per_sec": 500000, "p99_us": 8.0, "errors": 9}
  ]
}`)
	rep := diff(oldB, newB, 0.15)
	if len(rep.regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the 20%% workers=1 drop", rep.regressions)
	}
	if rep.compared != 3 {
		t.Errorf("compared = %d, want 3 (error counters must not split series identity)", rep.compared)
	}
}

// Latency is lower-is-better: p99 doubling is a regression, p99 halving
// is not.
func TestLatencyDirection(t *testing.T) {
	oldB := load(t, oldJSON)
	newB := load(t, `{
  "bench": "lock",
  "points": [
    {"dist": "disjoint", "workers": 1, "locks_per_sec": 1000000, "p99_us": 1.0},
    {"dist": "disjoint", "workers": 2, "locks_per_sec": 2000000, "p99_us": 9.0},
    {"dist": "hot", "workers": 4, "locks_per_sec": 500000, "p99_us": 8.0}
  ]
}`)
	rep := diff(oldB, newB, 0.15)
	if len(rep.regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the workers=2 p99 jump", rep.regressions)
	}
}

// Series present on only one side are counted, never failed: a new
// sweep arm is not a regression, and a removed one is visible.
func TestUnsharedSeries(t *testing.T) {
	oldB := load(t, oldJSON)
	newB := load(t, `{
  "bench": "lock",
  "points": [
    {"dist": "disjoint", "workers": 1, "locks_per_sec": 1000000, "p99_us": 2.0},
    {"dist": "disjoint", "workers": 8, "locks_per_sec": 3000000, "p99_us": 16.0}
  ]
}`)
	rep := diff(oldB, newB, 0.15)
	if len(rep.regressions) != 0 || rep.onlyOld != 2 || rep.onlyNew != 1 {
		t.Fatalf("got regressions=%v onlyOld=%d onlyNew=%d, want 0/2/1",
			rep.regressions, rep.onlyOld, rep.onlyNew)
	}
}

// The walgc baseline stores points as named sub-sweeps; group names
// become part of the series identity.
func TestGroupedPoints(t *testing.T) {
	grouped := `{
  "bench": "walgc",
  "points": {
    "sweep": [{"workers": 1, "group": true, "commits_per_sec": 5000, "commits_per_fsync": 4}],
    "gc":    [{"workers": 1, "group": true, "commits_per_sec": 7000, "commits_per_fsync": 6}]
  }
}`
	oldB := load(t, grouped)
	newB := load(t, `{
  "bench": "walgc",
  "points": {
    "sweep": [{"workers": 1, "group": true, "commits_per_sec": 3000, "commits_per_fsync": 4}],
    "gc":    [{"workers": 1, "group": true, "commits_per_sec": 7000, "commits_per_fsync": 6}]
  }
}`)
	rep := diff(oldB, newB, 0.15)
	if len(rep.regressions) != 1 || rep.compared != 2 {
		t.Fatalf("regressions = %v compared = %d, want the sweep drop only", rep.regressions, rep.compared)
	}
}

// The committed repo baselines must all parse — benchdiff understands
// every shape assetbench emits.
func TestCommittedBaselinesParse(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed baselines found: %v", err)
	}
	for _, path := range matches {
		b, err := loadBaseline(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(b.series) == 0 {
			t.Errorf("%s: parsed no series", path)
		}
	}
}

// A baseline diffed against itself is always clean — the advisory CI
// job must not cry wolf on identical numbers.
func TestSelfDiffClean(t *testing.T) {
	for _, path := range []string{"BENCH_baseline.json", "BENCH_walgc_baseline.json"} {
		b, err := loadBaseline(filepath.Join("..", "..", path))
		if err != nil {
			t.Fatal(err)
		}
		if rep := diff(b, b, 0.15); len(rep.regressions) != 0 {
			t.Errorf("%s vs itself: %v", path, rep.regressions)
		}
	}
}
