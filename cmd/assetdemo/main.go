// Command assetdemo walks through every §3 transaction model on an
// in-memory database, narrating the primitive calls and their effects. It
// is the guided-tour counterpart to the examples/ directory.
//
// Usage:
//
//	assetdemo [-model atomic|distributed|contingent|nested|split|saga|cooperate|cursor|workflow|all]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	asset "repro"
	"repro/models"
	"repro/workflow"
)

func main() {
	model := flag.String("model", "all", "which model to demonstrate")
	flag.Parse()

	demos := []struct {
		name string
		run  func(m *asset.Manager) error
	}{
		{"atomic", demoAtomic},
		{"distributed", demoDistributed},
		{"contingent", demoContingent},
		{"nested", demoNested},
		{"split", demoSplit},
		{"saga", demoSaga},
		{"cooperate", demoCooperate},
		{"cursor", demoCursor},
		{"workflow", demoWorkflow},
	}
	ran := false
	for _, d := range demos {
		if *model != "all" && *model != d.name {
			continue
		}
		ran = true
		fmt.Printf("\n=== %s ===\n", d.name)
		m, err := asset.Open(asset.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "assetdemo:", err)
			os.Exit(1)
		}
		if err := d.run(m); err != nil {
			fmt.Fprintf(os.Stderr, "assetdemo: %s: %v\n", d.name, err)
			os.Exit(1)
		}
		m.Close()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "assetdemo: unknown model %q\n", *model)
		os.Exit(2)
	}
}

func seed(m *asset.Manager, data string) (asset.OID, error) {
	var oid asset.OID
	err := models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = tx.Create([]byte(data))
		return err
	})
	return oid, err
}

func show(m *asset.Manager, label string, oid asset.OID) {
	if b, ok := m.Cache().Read(oid); ok {
		fmt.Printf("  %s = %q\n", label, b)
	} else {
		fmt.Printf("  %s = <deleted>\n", label)
	}
}

func demoAtomic(m *asset.Manager) error {
	oid, err := seed(m, "v0")
	if err != nil {
		return err
	}
	fmt.Println("committing a write, then aborting one:")
	if err := models.Atomic(m, func(tx *asset.Tx) error { return tx.Write(oid, []byte("v1")) }); err != nil {
		return err
	}
	show(m, "after commit", oid)
	err = models.Atomic(m, func(tx *asset.Tx) error {
		tx.Write(oid, []byte("doomed"))
		return errors.New("application decided to abort")
	})
	fmt.Printf("  second txn: %v\n", err)
	show(m, "after abort", oid)
	return nil
}

func demoDistributed(m *asset.Manager) error {
	a, _ := seed(m, "-")
	b, _ := seed(m, "-")
	fmt.Println("two components with GC dependency commit as one group:")
	if err := models.Distributed(m,
		func(tx *asset.Tx) error { return tx.Write(a, []byte("site-A debit")) },
		func(tx *asset.Tx) error { return tx.Write(b, []byte("site-B credit")) },
	); err != nil {
		return err
	}
	show(m, "A", a)
	show(m, "B", b)
	fmt.Println("now one component fails: neither commits:")
	err := models.Distributed(m,
		func(tx *asset.Tx) error { return tx.Write(a, []byte("should vanish")) },
		func(tx *asset.Tx) error { return errors.New("site B down") },
	)
	fmt.Printf("  group result: %v\n", err)
	show(m, "A", a)
	return nil
}

func demoContingent(m *asset.Manager) error {
	oid, _ := seed(m, "-")
	fmt.Println("alternatives tried in order; at most one commits:")
	idx, err := models.Contingent(m,
		func(tx *asset.Tx) error { return errors.New("Delta is full") },
		func(tx *asset.Tx) error { return errors.New("United is full") },
		func(tx *asset.Tx) error { return tx.Write(oid, []byte("American 6/11")) },
	)
	if err != nil {
		return err
	}
	fmt.Printf("  committed alternative #%d\n", idx)
	show(m, "booking", oid)
	return nil
}

func demoNested(m *asset.Manager) error {
	flight, _ := seed(m, "-")
	hotel, _ := seed(m, "-")
	fmt.Println("trip = nested transaction; each reservation is a subtransaction:")
	err := models.Atomic(m, func(tx *asset.Tx) error {
		if err := models.Sub(tx, func(c *asset.Tx) error { return c.Write(flight, []byte("AA100")) }); err != nil {
			return err
		}
		return models.Sub(tx, func(c *asset.Tx) error { return c.Write(hotel, []byte("Equator")) })
	})
	if err != nil {
		return err
	}
	show(m, "flight", flight)
	show(m, "hotel", hotel)

	fmt.Println("a failing subtransaction aborts the whole trip:")
	err = models.Atomic(m, func(tx *asset.Tx) error {
		if err := models.Sub(tx, func(c *asset.Tx) error { return c.Write(flight, []byte("UA200")) }); err != nil {
			return err
		}
		return models.Sub(tx, func(c *asset.Tx) error { return errors.New("hotel sold out") })
	})
	fmt.Printf("  trip result: %v\n", err)
	show(m, "flight (rolled back)", flight)
	return nil
}

func demoSplit(m *asset.Manager) error {
	a, _ := seed(m, "a0")
	b, _ := seed(m, "b0")
	fmt.Println("a transaction splits off finished work, then aborts; the split part survives:")
	var s asset.TID
	parent, err := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Write(a, []byte("a: finished work")); err != nil {
			return err
		}
		if err := tx.Write(b, []byte("b: in-progress")); err != nil {
			return err
		}
		var err error
		s, err = models.Split(tx, func(st *asset.Tx) error { return nil }, a)
		return err
	})
	if err != nil {
		return err
	}
	m.Begin(parent)
	if err := m.Wait(parent); err != nil {
		return err
	}
	if err := m.Commit(s); err != nil {
		return err
	}
	if err := m.Abort(parent); err != nil {
		return err
	}
	show(m, "a (split, committed)", a)
	show(m, "b (kept, aborted)", b)
	return nil
}

func demoSaga(m *asset.Manager) error {
	acct, _ := seed(m, "balance=100")
	ship, _ := seed(m, "-")
	fmt.Println("saga: charge, then ship; shipping fails, the charge is compensated:")
	res, err := models.NewSaga(m).
		Step("charge",
			func(tx *asset.Tx) error { return tx.Write(acct, []byte("balance=50")) },
			func(tx *asset.Tx) error { return tx.Write(acct, []byte("balance=100")) }).
		Step("ship",
			func(tx *asset.Tx) error { return errors.New("warehouse unreachable") }, nil).
		Run()
	if err != nil {
		return err
	}
	fmt.Printf("  saga: %v; compensated=%v\n", res.Err(), res.Compensated)
	show(m, "account", acct)
	show(m, "shipment", ship)
	return nil
}

func demoCooperate(m *asset.Manager) error {
	design, _ := seed(m, "....")
	fmt.Println("two designers edit one object concurrently via permits; both commit together:")
	ws := models.NewWorkspace(m, design)
	ready := make(chan struct{})
	done := make(chan struct{})
	alice, _ := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Update(design, func(b []byte) []byte { b[0], b[1] = 'A', 'A'; return b }); err != nil {
			return err
		}
		close(ready)
		<-done
		return nil
	})
	bob, _ := m.Initiate(func(tx *asset.Tx) error {
		<-ready
		defer close(done)
		return tx.Update(design, func(b []byte) []byte { b[2], b[3] = 'B', 'B'; return b })
	})
	if err := ws.Admit(alice); err != nil {
		return err
	}
	if err := ws.Admit(bob); err != nil {
		return err
	}
	m.Begin(alice, bob)
	if err := ws.CommitAll(); err != nil {
		return err
	}
	show(m, "design", design)
	return nil
}

func demoCursor(m *asset.Manager) error {
	var recs []asset.OID
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := 0; i < 3; i++ {
			oid, err := tx.Create([]byte(fmt.Sprintf("row-%d", i)))
			if err != nil {
				return err
			}
			recs = append(recs, oid)
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Println("a cursor-stability scan permits writes behind the cursor:")
	scanDone := make(chan struct{})
	holdScan := make(chan struct{})
	scanner, _ := m.Initiate(func(tx *asset.Tx) error {
		err := models.Scan(tx, models.CursorStability, recs, func(oid asset.OID, data []byte) error {
			fmt.Printf("  cursor read %q\n", data)
			return nil
		})
		close(scanDone)
		<-holdScan // scanner stays open
		return err
	})
	m.Begin(scanner)
	<-scanDone
	start := time.Now()
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		return tx.Write(recs[0], []byte("row-0 (updated mid-scan)"))
	}); err != nil {
		return err
	}
	fmt.Printf("  writer committed in %v while the scanner was still open\n", time.Since(start).Round(time.Microsecond))
	close(holdScan)
	if err := m.Commit(scanner); err != nil {
		return err
	}
	show(m, "record 0", recs[0])
	return nil
}

func demoWorkflow(m *asset.Manager) error {
	flight, _ := seed(m, "-")
	hotel, _ := seed(m, "-")
	car, _ := seed(m, "-")
	fmt.Println("the appendix's conference trip as a workflow (hotel fails -> flight compensated):")
	book := func(name string, fail bool, oid asset.OID) workflow.Task {
		return workflow.Task{
			Name: name,
			Action: func(tx *asset.Tx) error {
				if fail {
					return fmt.Errorf("%s unavailable", name)
				}
				return tx.Write(oid, []byte(name))
			},
			Compensate: func(tx *asset.Tx) error { return tx.Write(oid, []byte("-")) },
		}
	}
	res, err := workflow.New("X_conference").
		Alternatives("flight",
			book("Delta", true, flight),
			book("United", false, flight),
			book("American", false, flight)).
		Step(book("Equator", true, hotel)).
		Race("car", book("National", false, car), book("Avis", false, car)).Optional().
		Run(m)
	if err != nil {
		return err
	}
	fmt.Printf("  workflow: %v; steps=%v compensated=%v\n", res.Err(), res.Steps, res.Compensated)
	show(m, "flight", flight)
	show(m, "hotel", hotel)
	return nil
}
