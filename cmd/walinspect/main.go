// Command walinspect dumps an ASSET write-ahead log in human-readable
// form, one record per line, and summarizes the recovery outcome.
// Given a directory it walks the whole segmented chain (manifest,
// segments, legacy wal.log base) in LSN order; given a file it scans
// that single log.
//
// Usage:
//
//	walinspect [-v] <db-dir | path-to-wal.log>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/wal"
)

func main() {
	verbose := flag.Bool("v", false, "print image bytes")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: walinspect [-v] <db-dir | wal.log>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	info, statErr := os.Stat(path)
	isDir := statErr == nil && info.IsDir()

	scan := wal.ScanFile
	if isDir {
		scan = wal.ScanChain
	}
	var count int
	err := scan(path, func(r *wal.Record) error {
		count++
		switch r.Type {
		case wal.TBegin, wal.TAbort:
			fmt.Printf("%6d  %-10s %v\n", r.LSN, r.Type, r.TID)
		case wal.TUpdate:
			if *verbose {
				fmt.Printf("%6d  %-10s %v %v %v before=%q after=%q\n",
					r.LSN, r.Type, r.TID, r.OID, r.Kind, r.Before, r.After)
			} else {
				fmt.Printf("%6d  %-10s %v %v %v (%dB -> %dB)\n",
					r.LSN, r.Type, r.TID, r.OID, r.Kind, len(r.Before), len(r.After))
			}
		case wal.TUndo:
			fmt.Printf("%6d  %-10s %v %v %v (%dB)\n", r.LSN, r.Type, r.TID, r.OID, r.Kind, len(r.After))
		case wal.TDelegate:
			scope := "all objects"
			if r.OIDs != nil {
				scope = fmt.Sprintf("%d object(s)", len(r.OIDs))
			}
			fmt.Printf("%6d  %-10s %v -> %v (%s)\n", r.LSN, r.Type, r.TID, r.TID2, scope)
		case wal.TCommit:
			fmt.Printf("%6d  %-10s group=%v\n", r.LSN, r.Type, r.TIDs)
		case wal.TPrepare:
			fmt.Printf("%6d  %-10s gid=%d group=%v\n", r.LSN, r.Type, r.GID, r.TIDs)
		case wal.TDecide:
			verdict := "abort"
			if r.Commit {
				verdict = "commit"
			}
			fmt.Printf("%6d  %-10s gid=%d verdict=%s\n", r.LSN, r.Type, r.GID, verdict)
		case wal.TCheckpoint:
			fmt.Printf("%6d  %-10s\n", r.LSN, r.Type)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "walinspect: %v\n", err)
		os.Exit(1)
	}

	recover := func(p string) (*wal.State, error) { return wal.Recover(p) }
	if isDir {
		recover = func(p string) (*wal.State, error) { return wal.RecoverDir(p, wal.RecoverOptions{}) }
	}
	st, err := recover(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walinspect: recover: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d records; recovery: %d committed txn(s), %d loser(s), %d in-doubt group(s), %d object image(s), %d deletion(s), next LSN %d\n",
		count, len(st.Committed), len(st.Losers), len(st.InDoubt), len(st.Objects), len(st.Deleted), st.NextLSN)
	for gid, tids := range st.InDoubt {
		fmt.Printf("in doubt: gid=%d group=%v (awaiting coordinator verdict)\n", gid, tids)
	}
}
