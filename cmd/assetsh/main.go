// Command assetsh is an interactive shell over an ASSET database.
// Transactions stay open across lines, so permits, delegations, and
// dependencies between live transactions can be exercised by hand (or from
// a script on stdin).
//
// Usage:
//
//	assetsh                 # in-memory database
//	assetsh -dir mydb       # durable database (recovered at start)
//	assetsh < script.ash    # run a script
//
// Type "help" at the prompt for the command language.
package main

import (
	"flag"
	"fmt"
	"os"

	asset "repro"
	"repro/internal/shell"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	sync := flag.Bool("sync", false, "fsync on every commit")
	echo := flag.Bool("echo", false, "echo commands (script transcripts)")
	flag.Parse()

	m, err := asset.Open(asset.Config{Dir: *dir, SyncCommits: *sync})
	if err != nil {
		fmt.Fprintln(os.Stderr, "assetsh:", err)
		os.Exit(1)
	}
	defer m.Close()

	sh := shell.New(m, os.Stdout)
	sh.Echo = *echo
	fmt.Println(`assetsh — type "help" for commands, "quit" to exit`)
	if err := sh.Run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "assetsh:", err)
		os.Exit(1)
	}
}
