// Command assetbench regenerates the experiment tables listed in DESIGN.md
// (E1–E14, the LOCK contention sweep, and ablations A1–A4).
//
// Usage:
//
//	assetbench -run all            # every experiment, full parameters
//	assetbench -run E5,E9 -quick   # selected experiments, small parameters
//	assetbench -run lock           # the sharded lock-table contention sweep
//	assetbench -run resil          # the admission-control overload sweep
//	assetbench -baseline FILE      # write the contention sweep as JSON
//	assetbench -resil-baseline F   # write the overload sweep as JSON
//	assetbench -walgc-baseline F   # write the group-commit sweep as JSON
//	assetbench -hotkey-baseline F  # write the hot-key escrow sweep as JSON
//	assetbench -rpc-baseline FILE  # write the remote-path sweep as JSON
//	assetbench -dist-baseline FILE # write the distributed-commit sweep as JSON
//	assetbench -list               # show the experiment index
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

// baselineFile is the JSON document the -baseline flags write: one sweep's
// points plus enough host metadata to judge whether two baselines are
// comparable.
type baselineFile struct {
	Bench     string `json:"bench"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Quick     bool   `json:"quick"`
	Points    any    `json:"points"`
}

func writeBaseline(path, name string, quick bool, points any) error {
	doc := baselineFile{
		Bench:     name,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
		Points:    points,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "small parameters (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiments and exit")
	baseline := flag.String("baseline", "", "write the lock-contention sweep as JSON to this file")
	resilBaseline := flag.String("resil-baseline", "", "write the admission-control overload sweep as JSON to this file")
	walgcBaseline := flag.String("walgc-baseline", "", "write the group-commit WAL sweep as JSON to this file")
	hotkeyBaseline := flag.String("hotkey-baseline", "", "write the hot-key escrow sweep as JSON to this file")
	rpcBaseline := flag.String("rpc-baseline", "", "write the remote-path (local vs networked vs chaos) sweep as JSON to this file")
	distBaseline := flag.String("dist-baseline", "", "write the distributed-commit (2-node 2PC vs single-node) sweep as JSON to this file")
	flag.Parse()

	if *baseline != "" || *resilBaseline != "" || *walgcBaseline != "" || *hotkeyBaseline != "" || *rpcBaseline != "" || *distBaseline != "" {
		start := time.Now()
		if *baseline != "" {
			if err := writeBaseline(*baseline, "lock-contention", *quick, bench.LockContention(*quick)); err != nil {
				fmt.Fprintf(os.Stderr, "assetbench: baseline: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s in %v\n", *baseline, time.Since(start).Round(time.Millisecond))
		}
		if *resilBaseline != "" {
			if err := writeBaseline(*resilBaseline, "resil-overload", *quick, bench.ResilOverload(*quick)); err != nil {
				fmt.Fprintf(os.Stderr, "assetbench: resil-baseline: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s in %v\n", *resilBaseline, time.Since(start).Round(time.Millisecond))
		}
		if *walgcBaseline != "" {
			if err := writeBaseline(*walgcBaseline, "walgc-pipeline", *quick, bench.WALGC(*quick)); err != nil {
				fmt.Fprintf(os.Stderr, "assetbench: walgc-baseline: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s in %v\n", *walgcBaseline, time.Since(start).Round(time.Millisecond))
		}
		if *hotkeyBaseline != "" {
			if err := writeBaseline(*hotkeyBaseline, "hotkey-escrow", *quick, bench.HotKey(*quick)); err != nil {
				fmt.Fprintf(os.Stderr, "assetbench: hotkey-baseline: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s in %v\n", *hotkeyBaseline, time.Since(start).Round(time.Millisecond))
		}
		if *rpcBaseline != "" {
			if err := writeBaseline(*rpcBaseline, "rpc-remote-path", *quick, bench.RPCSweep(*quick)); err != nil {
				fmt.Fprintf(os.Stderr, "assetbench: rpc-baseline: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s in %v\n", *rpcBaseline, time.Since(start).Round(time.Millisecond))
		}
		if *distBaseline != "" {
			if err := writeBaseline(*distBaseline, "dist-2pc", *quick, bench.DistSweep(*quick)); err != nil {
				fmt.Fprintf(os.Stderr, "assetbench: dist-baseline: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s in %v\n", *distBaseline, time.Since(start).Round(time.Millisecond))
		}
		return
	}

	if *list || *runFlag == "" {
		fmt.Println("Experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %-70s [%s]\n", e.ID, e.Title, e.Anchor)
		}
		if *runFlag == "" && !*list {
			fmt.Println("\nrun with -run all or -run <id>[,<id>...]")
		}
		return
	}

	var selected []bench.Experiment
	if strings.EqualFold(*runFlag, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			e, ok := bench.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "assetbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	for _, e := range selected {
		fmt.Printf("\n== %s: %s  (%s)\n", e.ID, e.Title, e.Anchor)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "assetbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n%d experiment(s) in %v\n", len(selected), time.Since(start).Round(time.Millisecond))
}
