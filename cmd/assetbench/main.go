// Command assetbench regenerates the experiment tables listed in DESIGN.md
// (E1–E14 and ablations A1–A4).
//
// Usage:
//
//	assetbench -run all            # every experiment, full parameters
//	assetbench -run E5,E9 -quick   # selected experiments, small parameters
//	assetbench -list               # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "small parameters (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list || *runFlag == "" {
		fmt.Println("Experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %-70s [%s]\n", e.ID, e.Title, e.Anchor)
		}
		if *runFlag == "" && !*list {
			fmt.Println("\nrun with -run all or -run <id>[,<id>...]")
		}
		return
	}

	var selected []bench.Experiment
	if strings.EqualFold(*runFlag, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			e, ok := bench.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "assetbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	for _, e := range selected {
		fmt.Printf("\n== %s: %s  (%s)\n", e.ID, e.Title, e.Anchor)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "assetbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n%d experiment(s) in %v\n", len(selected), time.Since(start).Round(time.Millisecond))
}
