package models

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	asset "repro"
)

func newMem(t *testing.T) *asset.Manager {
	t.Helper()
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func seed(t *testing.T, m *asset.Manager, data []byte) asset.OID {
	t.Helper()
	var oid asset.OID
	if err := Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = tx.Create(data)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return oid
}

func readObj(t *testing.T, m *asset.Manager, oid asset.OID) string {
	t.Helper()
	b, ok := m.Cache().Read(oid)
	if !ok {
		t.Fatalf("object %v missing", oid)
	}
	return string(b)
}

func TestAtomicCommit(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte("v0"))
	if err := Atomic(m, func(tx *asset.Tx) error { return tx.Write(oid, []byte("v1")) }); err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, oid) != "v1" {
		t.Fatal("atomic write lost")
	}
}

func TestAtomicAbortRollsBack(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte("v0"))
	err := Atomic(m, func(tx *asset.Tx) error {
		if err := tx.Write(oid, []byte("dirty")); err != nil {
			return err
		}
		return errors.New("fail")
	})
	if !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if readObj(t, m, oid) != "v0" {
		t.Fatal("rollback failed")
	}
}

func TestAtomicRetryGivesUpOnAppError(t *testing.T) {
	m := newMem(t)
	calls := 0
	err := AtomicRetry(m, 5, func(tx *asset.Tx) error {
		calls++
		return errors.New("app error")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d; app errors must not retry", err, calls)
	}
}

func TestDistributedCommitsAll(t *testing.T) {
	m := newMem(t)
	var oids [3]asset.OID
	err := Distributed(m,
		func(tx *asset.Tx) error { var e error; oids[0], e = tx.Create([]byte("a")); return e },
		func(tx *asset.Tx) error { var e error; oids[1], e = tx.Create([]byte("b")); return e },
		func(tx *asset.Tx) error { var e error; oids[2], e = tx.Create([]byte("c")); return e },
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache().Len() != 3 {
		t.Fatalf("cache len = %d, want 3", m.Cache().Len())
	}
	if st := m.Stats(); st.LogForces != 1 {
		t.Fatalf("log forces = %d, want 1 (single group commit record)", st.LogForces)
	}
}

func TestDistributedAbortsAll(t *testing.T) {
	m := newMem(t)
	err := Distributed(m,
		func(tx *asset.Tx) error { _, e := tx.Create([]byte("a")); return e },
		func(tx *asset.Tx) error { return errors.New("component fails") },
	)
	if !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if m.Cache().Len() != 0 {
		t.Fatal("partial component survived group abort")
	}
}

func TestContingentFirstSucceeds(t *testing.T) {
	m := newMem(t)
	idx, err := Contingent(m,
		func(tx *asset.Tx) error { _, e := tx.Create([]byte("first")); return e },
		func(tx *asset.Tx) error { t.Error("second alternative ran"); return nil },
	)
	if err != nil || idx != 0 {
		t.Fatalf("idx=%d err=%v", idx, err)
	}
}

func TestContingentFallsThrough(t *testing.T) {
	m := newMem(t)
	ran := []string{}
	idx, err := Contingent(m,
		func(tx *asset.Tx) error { ran = append(ran, "a"); return errors.New("no") },
		func(tx *asset.Tx) error { ran = append(ran, "b"); return errors.New("no") },
		func(tx *asset.Tx) error { ran = append(ran, "c"); return nil },
	)
	if err != nil || idx != 2 {
		t.Fatalf("idx=%d err=%v", idx, err)
	}
	if fmt.Sprint(ran) != "[a b c]" {
		t.Fatalf("order = %v", ran)
	}
}

func TestContingentAllFail(t *testing.T) {
	m := newMem(t)
	idx, err := Contingent(m,
		func(tx *asset.Tx) error { return errors.New("no") },
		func(tx *asset.Tx) error { return errors.New("no") },
	)
	if idx != -1 || err == nil {
		t.Fatalf("idx=%d err=%v", idx, err)
	}
}

func TestNestedCommit(t *testing.T) {
	m := newMem(t)
	flight := seed(t, m, []byte("-"))
	hotel := seed(t, m, []byte("-"))
	err := Atomic(m, func(tx *asset.Tx) error {
		if err := Sub(tx, func(c *asset.Tx) error { return c.Write(flight, []byte("AA100")) }); err != nil {
			return err
		}
		return Sub(tx, func(c *asset.Tx) error { return c.Write(hotel, []byte("Equator")) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, flight) != "AA100" || readObj(t, m, hotel) != "Equator" {
		t.Fatal("nested subtransaction effects lost")
	}
}

func TestNestedChildFailureAbortsParent(t *testing.T) {
	m := newMem(t)
	flight := seed(t, m, []byte("-"))
	err := Atomic(m, func(tx *asset.Tx) error {
		if err := Sub(tx, func(c *asset.Tx) error { return c.Write(flight, []byte("AA100")) }); err != nil {
			return err
		}
		return Sub(tx, func(c *asset.Tx) error { return errors.New("hotel full") })
	})
	if !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if readObj(t, m, flight) != "-" {
		t.Fatal("first child's delegated write survived parent abort")
	}
}

func TestNestedOptionalChild(t *testing.T) {
	m := newMem(t)
	car := seed(t, m, []byte("-"))
	err := Atomic(m, func(tx *asset.Tx) error {
		ok, err := SubOptional(tx, func(c *asset.Tx) error { return errors.New("no cars") })
		if err != nil {
			return err
		}
		if ok {
			t.Error("failed optional child reported ok")
		}
		return tx.Write(car, []byte("public-transit"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, car) != "public-transit" {
		t.Fatal("parent work lost after optional child failure")
	}
}

func TestNestedThreeLevels(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte{0})
	err := Atomic(m, func(tx *asset.Tx) error {
		return Sub(tx, func(mid *asset.Tx) error {
			return Sub(mid, func(leaf *asset.Tx) error {
				return leaf.Update(oid, func(b []byte) []byte { b[0] = 3; return b })
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, oid)[0] != 3 {
		t.Fatal("grandchild write lost")
	}
}

func TestNestedSubAbortDoesNotUndoParentWork(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("pa"))
	err := Atomic(m, func(tx *asset.Tx) error {
		if err := tx.Write(a, []byte("parent-wrote")); err != nil {
			return err
		}
		// Child fails after touching nothing of its own; parent tolerates.
		if ok, err := SubOptional(tx, func(c *asset.Tx) error { return errors.New("nope") }); err != nil || ok {
			return fmt.Errorf("unexpected: ok=%v err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, a) != "parent-wrote" {
		t.Fatal("parent work lost")
	}
}

func TestSplitCommitIndependently(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("a0"))
	b := seed(t, m, []byte("b0"))
	var splitID asset.TID
	parent, err := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Write(a, []byte("a1")); err != nil {
			return err
		}
		if err := tx.Write(b, []byte("b1")); err != nil {
			return err
		}
		// Split off responsibility for a; s finishes that line of work.
		s, err := Split(tx, func(s *asset.Tx) error { return nil }, a)
		if err != nil {
			return err
		}
		splitID = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Begin(parent)
	if err := m.Wait(parent); err != nil {
		t.Fatal(err)
	}
	// The split transaction commits its delegated work; the parent aborts.
	if err := m.Commit(splitID); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(parent); err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, a) != "a1" {
		t.Fatal("split-off write lost with parent abort")
	}
	if readObj(t, m, b) != "b0" {
		t.Fatal("parent's retained write survived its abort")
	}
}

func TestSplitThenJoin(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("a0"))
	other, err := m.Initiate(func(tx *asset.Tx) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	m.Begin(other)
	var s asset.TID
	parent, _ := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Write(a, []byte("a1")); err != nil {
			return err
		}
		var err error
		s, err = Split(tx, func(st *asset.Tx) error { return nil }, a)
		return err
	})
	m.Begin(parent)
	if err := m.Wait(parent); err != nil {
		t.Fatal(err)
	}
	// Join s into `other`; now the write commits with `other`.
	if err := Join(m, s, other); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(parent); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(other); err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, a) != "a1" {
		t.Fatal("joined write lost")
	}
}

func TestSagaCommitsAllSteps(t *testing.T) {
	m := newMem(t)
	var order []string
	saga := NewSaga(m).
		Step("s1", func(tx *asset.Tx) error { order = append(order, "s1"); return nil }, nil).
		Step("s2", func(tx *asset.Tx) error { order = append(order, "s2"); return nil }, nil).
		Step("s3", func(tx *asset.Tx) error { order = append(order, "s3"); return nil }, nil)
	res, err := saga.Run()
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if fmt.Sprint(order) != "[s1 s2 s3]" || len(res.Committed) != 3 {
		t.Fatalf("order=%v committed=%v", order, res.Committed)
	}
}

// TestSagaCompensationOrder is experiment E8's semantic core: aborting
// after step k runs exactly ct_k..ct_1 in reverse order.
func TestSagaCompensationOrder(t *testing.T) {
	m := newMem(t)
	var events []string
	step := func(name string) (asset.TxnFunc, asset.TxnFunc) {
		return func(tx *asset.Tx) error { events = append(events, name); return nil },
			func(tx *asset.Tx) error { events = append(events, "c"+name); return nil }
	}
	a1, c1 := step("s1")
	a2, c2 := step("s2")
	a3, c3 := step("s3")
	saga := NewSaga(m).
		Step("s1", a1, c1).
		Step("s2", a2, c2).
		Step("s3", a3, c3).
		Step("s4", func(tx *asset.Tx) error { return errors.New("fail") }, nil)
	res, err := saga.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil || res.FailedStep != "s4" {
		t.Fatalf("res = %+v", res)
	}
	want := "[s1 s2 s3 cs3 cs2 cs1]"
	if fmt.Sprint(events) != want {
		t.Fatalf("events = %v, want %v", events, want)
	}
	_ = c3
	_ = a3
}

func TestSagaStepsCommitEagerly(t *testing.T) {
	// Each step's effects are durable/visible before the saga ends — the
	// defining difference from a flat transaction.
	m := newMem(t)
	oid := seed(t, m, []byte("0"))
	var midValue string
	saga := NewSaga(m).
		Step("write", func(tx *asset.Tx) error { return tx.Write(oid, []byte("1")) },
			func(tx *asset.Tx) error { return tx.Write(oid, []byte("0")) }).
		Step("observe", func(tx *asset.Tx) error {
			midValue = readObj(t, m, oid) // another txn could see this too
			return nil
		}, nil)
	if res, err := saga.Run(); err != nil || res.Err() != nil {
		t.Fatalf("%v %v", err, res.Err())
	}
	if midValue != "1" {
		t.Fatalf("step 1's commit not visible mid-saga: %q", midValue)
	}
}

func TestSagaCompensationRestoresState(t *testing.T) {
	m := newMem(t)
	acct := seed(t, m, []byte("100"))
	saga := NewSaga(m).
		Step("debit", func(tx *asset.Tx) error { return tx.Write(acct, []byte("050")) },
			func(tx *asset.Tx) error { return tx.Write(acct, []byte("100")) }).
		Step("fail", func(tx *asset.Tx) error { return errors.New("downstream gone") }, nil)
	res, err := saga.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("saga reported success")
	}
	if readObj(t, m, acct) != "100" {
		t.Fatalf("account = %q, want compensated 100", readObj(t, m, acct))
	}
}

func TestSagaCompensationRetries(t *testing.T) {
	m := newMem(t)
	var attempts atomic.Int32
	saga := NewSaga(m).
		Step("s1", func(tx *asset.Tx) error { return nil },
			func(tx *asset.Tx) error {
				if attempts.Add(1) < 3 {
					return errors.New("transient")
				}
				return nil
			}).
		Step("s2", func(tx *asset.Tx) error { return errors.New("fail") }, nil)
	res, err := saga.Run()
	if err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 3 || len(res.Compensated) != 1 {
		t.Fatalf("attempts=%d compensated=%v", attempts.Load(), res.Compensated)
	}
}

func TestWorkspaceCooperativeDesign(t *testing.T) {
	m := newMem(t)
	design := seed(t, m, []byte{0, 0})
	ws := NewWorkspace(m, design)

	aliceReady := make(chan struct{})
	bobDone := make(chan struct{})
	alice, _ := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Update(design, func(b []byte) []byte { b[0] = 1; return b }); err != nil {
			return err
		}
		close(aliceReady)
		<-bobDone
		return nil
	})
	bob, _ := m.Initiate(func(tx *asset.Tx) error {
		<-aliceReady
		defer close(bobDone)
		return tx.Update(design, func(b []byte) []byte { b[1] = 2; return b })
	})
	if err := ws.Admit(alice); err != nil {
		t.Fatal(err)
	}
	if err := ws.Admit(bob); err != nil {
		t.Fatal(err)
	}
	m.Begin(alice, bob)
	if err := ws.CommitAll(); err != nil {
		t.Fatal(err)
	}
	got := readObj(t, m, design)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("design = %v, want both contributions", []byte(got))
	}
}

func TestWorkspaceAbortAllRollsBackEveryone(t *testing.T) {
	m := newMem(t)
	design := seed(t, m, []byte{9})
	ws := NewWorkspace(m, design)
	ready := make(chan struct{})
	alice, _ := m.Initiate(func(tx *asset.Tx) error {
		err := tx.Update(design, func(b []byte) []byte { b[0] = 1; return b })
		close(ready)
		return err
	})
	ws.Admit(alice)
	m.Begin(alice)
	<-ready
	m.Wait(alice)
	if err := ws.AbortAll(); err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, design)[0] != 9 {
		t.Fatal("workspace abort did not restore the design")
	}
}
