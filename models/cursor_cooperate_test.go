package models

import (
	"errors"
	"fmt"
	"testing"
	"time"

	asset "repro"
)

func TestScanRepeatableReadBlocksWriters(t *testing.T) {
	m := newMem(t)
	var oids []asset.OID
	for i := 0; i < 3; i++ {
		oids = append(oids, seed(t, m, []byte(fmt.Sprintf("r%d", i))))
	}
	scanDone := make(chan struct{})
	hold := make(chan struct{})
	scanner, _ := m.Initiate(func(tx *asset.Tx) error {
		var got []string
		if err := Scan(tx, RepeatableRead, oids, func(_ asset.OID, data []byte) error {
			got = append(got, string(data))
			return nil
		}); err != nil {
			return err
		}
		if fmt.Sprint(got) != "[r0 r1 r2]" {
			t.Errorf("scan saw %v", got)
		}
		close(scanDone)
		<-hold
		return nil
	})
	m.Begin(scanner)
	<-scanDone
	// Under repeatable read a writer must block until the scanner commits.
	wDone := make(chan error, 1)
	writer, _ := m.Initiate(func(tx *asset.Tx) error {
		err := tx.Write(oids[0], []byte("w"))
		wDone <- err
		return err
	})
	m.Begin(writer)
	select {
	case err := <-wDone:
		t.Fatalf("writer proceeded (%v) against repeatable-read scan", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(hold)
	if err := m.Commit(scanner); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(writer); err != nil {
		t.Fatal(err)
	}
}

func TestScanCursorStabilityReleasesBehindCursor(t *testing.T) {
	m := newMem(t)
	var oids []asset.OID
	for i := 0; i < 2; i++ {
		oids = append(oids, seed(t, m, []byte("x")))
	}
	scanDone := make(chan struct{})
	hold := make(chan struct{})
	scanner, _ := m.Initiate(func(tx *asset.Tx) error {
		if err := Scan(tx, CursorStability, oids, func(asset.OID, []byte) error { return nil }); err != nil {
			return err
		}
		close(scanDone)
		<-hold
		return nil
	})
	m.Begin(scanner)
	<-scanDone
	// The scanner is still open, but writers proceed.
	done := make(chan error, 1)
	go func() { done <- Atomic(m, func(tx *asset.Tx) error { return tx.Write(oids[0], []byte("w")) }) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer blocked despite cursor stability")
	}
	close(hold)
	m.Commit(scanner)
}

func TestScanCallbackErrorAborts(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte("x"))
	err := Atomic(m, func(tx *asset.Tx) error {
		return Scan(tx, CursorStability, []asset.OID{oid}, func(asset.OID, []byte) error {
			return errors.New("inspection failed")
		})
	})
	if !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestCooperateHelper(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte{0})
	tiWrote := make(chan struct{})
	tjWrote := make(chan struct{})
	ti, _ := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Update(oid, func(b []byte) []byte { b[0] += 1; return b }); err != nil {
			return err
		}
		close(tiWrote)
		<-tjWrote
		return nil
	})
	tj, _ := m.Initiate(func(tx *asset.Tx) error {
		<-tiWrote
		defer close(tjWrote)
		return tx.Update(oid, func(b []byte) []byte { b[0] += 2; return b })
	})
	// Cooperate: CD + permit lets tj write concurrently but not commit
	// before ti terminates.
	if err := Cooperate(m, ti, tj, []asset.OID{oid}, asset.OpAll); err != nil {
		t.Fatal(err)
	}
	m.Begin(ti, tj)
	res := make(chan error, 1)
	go func() { res <- m.Commit(tj) }()
	select {
	case err := <-res:
		t.Fatalf("tj committed (%v) before ti terminated (CD violated)", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := m.Commit(ti); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if got := readObj(t, m, oid); got[0] != 3 {
		t.Fatalf("object = %d, want 3", got[0])
	}
}

func TestWorkspaceMembers(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte("d"))
	ws := NewWorkspace(m, oid)
	if len(ws.Members()) != 0 {
		t.Fatal("fresh workspace has members")
	}
	a, _ := m.Initiate(func(tx *asset.Tx) error { return nil })
	if err := ws.Admit(a); err != nil {
		t.Fatal(err)
	}
	got := ws.Members()
	if len(got) != 1 || got[0] != a {
		t.Fatalf("members = %v", got)
	}
	// The returned slice is a copy.
	got[0] = 999
	if ws.Members()[0] != a {
		t.Fatal("Members exposed internal state")
	}
	m.Begin(a)
	if err := ws.CommitAll(); err != nil {
		t.Fatal(err)
	}
	// Empty-workspace operations are no-ops.
	empty := NewWorkspace(m, oid)
	if err := empty.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if err := empty.AbortAll(); err != nil {
		t.Fatal(err)
	}
}

func TestSubRequiredAlias(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte("-"))
	err := Atomic(m, func(tx *asset.Tx) error {
		return SubRequired(tx, func(c *asset.Tx) error { return c.Write(oid, []byte("sub")) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if readObj(t, m, oid) != "sub" {
		t.Fatal("SubRequired lost the write")
	}
}

func TestDistributedEmptyAndContingentEmpty(t *testing.T) {
	m := newMem(t)
	if err := Distributed(m); err != nil {
		t.Fatal(err)
	}
	if idx, err := Contingent(m); idx != -1 || err == nil {
		t.Fatalf("empty contingent = %d, %v", idx, err)
	}
}
