package models

import (
	asset "repro"
)

// CursorMode selects the degree of consistency for a scan.
type CursorMode int

// Cursor modes.
const (
	// RepeatableRead holds every read lock until the scanning transaction
	// terminates (full serializability; writers wait).
	RepeatableRead CursorMode = iota
	// CursorStability permits writes to each record as soon as the cursor
	// moves past it (§3.2.2): writers proceed without waiting for the
	// scanner to commit, at the price of non-repeatable reads.
	CursorStability
)

// Scan visits the given records in order under the chosen consistency
// mode, calling fn with each record's contents. Under CursorStability it
// executes the paper's translation — permit(ti, record, write) before
// moving the cursor to the next record.
func Scan(tx *asset.Tx, mode CursorMode, oids []asset.OID, fn func(oid asset.OID, data []byte) error) error {
	m := tx.Manager()
	for _, oid := range oids {
		data, err := tx.Read(oid)
		if err != nil {
			return err
		}
		if err := fn(oid, data); err != nil {
			return err
		}
		if mode == CursorStability {
			// Done with this record: any transaction may now write it.
			if err := m.Permit(tx.ID(), asset.NilTID, []asset.OID{oid}, asset.OpWrite); err != nil {
				return err
			}
		}
	}
	return nil
}
