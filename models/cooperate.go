package models

import (
	asset "repro"
)

// Cooperate wires the §3.2.1 cooperating-transactions pattern between two
// live transactions: ti permits tj to perform the given operations on the
// shared objects, and a commit dependency keeps tj from committing before
// ti terminates. Call it again with the roles swapped for the "ping-pong"
// that lets both sides keep working on the shared objects:
//
//	form_dependency(CD, ti, tj);  permit(ti, tj, ob, op);
func Cooperate(m *asset.Manager, ti, tj asset.TID, oids []asset.OID, ops asset.OpSet) error {
	if err := m.FormDependency(asset.CD, ti, tj); err != nil {
		return err
	}
	return m.Permit(ti, tj, oids, ops)
}

// CoupleFates adds the mutual commitment the section suggests for design
// environments ("both commit or neither"): a group commit dependency on top
// of mutual permits over the shared objects.
func CoupleFates(m *asset.Manager, ti, tj asset.TID, oids []asset.OID) error {
	if err := m.Permit(ti, tj, oids, 0); err != nil {
		return err
	}
	if err := m.Permit(tj, ti, oids, 0); err != nil {
		return err
	}
	return m.FormDependency(asset.GC, ti, tj)
}

// Workspace is a shared design workspace for a set of cooperating
// transactions: every participant may perform any operation on the shared
// objects concurrently, and the whole group commits or aborts together —
// "changes to the (design) object being shared will be committed only if
// the final state ... is acceptable in the eyes of the cooperating
// designers".
type Workspace struct {
	m       *asset.Manager
	oids    []asset.OID
	members []asset.TID
}

// NewWorkspace creates a workspace over the given shared objects.
func NewWorkspace(m *asset.Manager, oids ...asset.OID) *Workspace {
	return &Workspace{m: m, oids: oids}
}

// Admit adds a live transaction to the workspace: mutual permits with every
// existing member and a GC dependency binding its fate to the group's.
func (w *Workspace) Admit(t asset.TID) error {
	for _, other := range w.members {
		if err := CoupleFates(w.m, other, t, w.oids); err != nil {
			return err
		}
	}
	w.members = append(w.members, t)
	return nil
}

// Members returns the admitted transactions in admission order.
func (w *Workspace) Members() []asset.TID {
	return append([]asset.TID(nil), w.members...)
}

// CommitAll commits the whole workspace group (committing any member
// commits all, per group-commit semantics).
func (w *Workspace) CommitAll() error {
	if len(w.members) == 0 {
		return nil
	}
	return w.m.Commit(w.members[0])
}

// AbortAll aborts the whole group.
func (w *Workspace) AbortAll() error {
	if len(w.members) == 0 {
		return nil
	}
	return w.m.Abort(w.members[0])
}
