package models

import (
	asset "repro"
)

// Sub executes fn as a subtransaction of the transaction running tx,
// following the paper's §3.1.4 nested-transaction translation exactly:
//
//	t1 = initiate(f);  permit(self(), t1);  begin(t1);
//	if (!wait(t1)) abort(self());
//	delegate(t1, self());  commit(t1);
//
// The parent's permit lets the child access every object the parent holds
// (and, transitively, the objects the parent was itself permitted — so a
// nested subtransaction can reach any ancestor's objects). The delegation
// folds the child's work into the parent: it becomes permanent only when
// the top-level transaction commits, while the child can abort without
// aborting the parent when the caller handles the error.
//
// Sub returns asset.ErrAborted if the child aborted; the caller decides
// whether that aborts the whole transaction (return the error) or not
// (ignore it, as contingent subtransactions do).
func Sub(tx *asset.Tx, fn asset.TxnFunc) error {
	m := tx.Manager()
	child, err := tx.Initiate(fn)
	if err != nil {
		return err
	}
	// The child may use everything the parent may (no conflicts between
	// parent and child).
	if err := m.Permit(tx.ID(), child, nil, 0); err != nil {
		return err
	}
	if err := m.Begin(child); err != nil {
		return err
	}
	// tx.Wait (not Manager.Wait): the parent holds locks while it waits,
	// so this dependency must be visible to deadlock detection.
	if err := tx.Wait(child); err != nil {
		return err // child aborted; caller decides whether to abort self
	}
	// Fold the child's effects into the parent.
	if err := m.Delegate(child, tx.ID()); err != nil {
		return err
	}
	// The child delegated everything, so committing it only terminates the
	// descriptor (the paper notes commit-vs-abort is immaterial here).
	return m.Commit(child)
}

// SubRequired is Sub for subtransactions whose failure must abort the whole
// nested transaction: any child error is returned so the parent body
// propagates it (the paper's abort(self())).
func SubRequired(tx *asset.Tx, fn asset.TxnFunc) error {
	return Sub(tx, fn)
}

// SubOptional runs a subtransaction whose failure is tolerated: it returns
// true if the child committed into the parent, false if it aborted (the
// parent continues either way). Non-abort infrastructure errors are still
// returned.
func SubOptional(tx *asset.Tx, fn asset.TxnFunc) (bool, error) {
	err := Sub(tx, fn)
	switch {
	case err == nil:
		return true, nil
	case isAbort(err):
		return false, nil
	default:
		return false, err
	}
}

func isAbort(err error) bool {
	return err != nil && (errorsIs(err, asset.ErrAborted) || errorsIs(err, asset.ErrDeadlock))
}
