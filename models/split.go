package models

import (
	"errors"

	asset "repro"
)

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// Split splits a new transaction s off the transaction running tx (§3.1.5):
// the operations tx has performed on the objects in oids (all of them when
// oids is empty) are delegated to s, which then begins executing fn. The
// two transactions commit or abort independently afterwards. It follows the
// paper's translation:
//
//	s = initiate(f);  delegate(parent(s), s, X);  begin(s);
//
// The caller receives s's tid for a later Join, commit, or abort.
func Split(tx *asset.Tx, fn asset.TxnFunc, oids ...asset.OID) (asset.TID, error) {
	m := tx.Manager()
	s, err := tx.Initiate(fn)
	if err != nil {
		return asset.NilTID, err
	}
	if err := m.Delegate(tx.ID(), s, oids...); err != nil {
		m.Abort(s)
		return asset.NilTID, err
	}
	if err := m.Begin(s); err != nil {
		return asset.NilTID, err
	}
	return s, nil
}

// Join joins transaction s into transaction t (§3.1.5): it waits for s to
// complete, delegates everything s is responsible for to t, and terminates
// s (which, having delegated all its work, commits vacuously). After Join,
// s's operations commit or abort with t.
func Join(m *asset.Manager, s, t asset.TID) error {
	if err := m.Wait(s); err != nil {
		return err // s aborted; nothing to join
	}
	if err := m.Delegate(s, t); err != nil {
		return err
	}
	return m.Commit(s)
}
