package models

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	asset "repro"
)

// TestSagaRetriesTransientStepFailure: a step that fails twice with a
// transient (ErrRetryable-tagged) error and then succeeds must not trigger
// compensation — the retry engine absorbs the failures.
func TestSagaRetriesTransientStepFailure(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("a0"))
	b := seed(t, m, []byte("b0"))
	var tries atomic.Int32
	var compensated atomic.Int32
	s := NewSaga(m).WithOptions(SagaOptions{StepAttempts: 5, Backoff: time.Microsecond}).
		Step("a", func(tx *asset.Tx) error { return tx.Write(a, []byte("a1")) },
			func(tx *asset.Tx) error { compensated.Add(1); return tx.Write(a, []byte("a0")) }).
		Step("flaky", func(tx *asset.Tx) error {
			if tries.Add(1) < 3 {
				return fmt.Errorf("transient glitch: %w", asset.ErrRetryable)
			}
			return tx.Write(b, []byte("b1"))
		}, nil)
	res, err := s.Run()
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if got := tries.Load(); got != 3 {
		t.Fatalf("flaky step ran %d times, want 3", got)
	}
	if compensated.Load() != 0 {
		t.Fatalf("compensations ran: %d", compensated.Load())
	}
	if readObj(t, m, a) != "a1" || readObj(t, m, b) != "b1" {
		t.Fatal("final state wrong")
	}
}

// TestSagaCompensatesAfterRetryBudgetExhausted: a step that stays
// transiently broken past StepAttempts counts as a component abort, so the
// committed prefix is compensated in reverse order.
func TestSagaCompensatesAfterRetryBudgetExhausted(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("a0"))
	b := seed(t, m, []byte("b0"))
	var tries atomic.Int32
	s := NewSaga(m).WithOptions(SagaOptions{StepAttempts: 4, Backoff: time.Microsecond}).
		Step("a", func(tx *asset.Tx) error { return tx.Write(a, []byte("a1")) },
			func(tx *asset.Tx) error { return tx.Write(a, []byte("a0")) }).
		Step("b", func(tx *asset.Tx) error { return tx.Write(b, []byte("b1")) },
			func(tx *asset.Tx) error { return tx.Write(b, []byte("b0")) }).
		Step("doomed", func(tx *asset.Tx) error {
			tries.Add(1)
			return fmt.Errorf("still glitching: %w", asset.ErrRetryable)
		}, nil)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedStep != "doomed" {
		t.Fatalf("res = %+v", res)
	}
	if got := tries.Load(); got != 4 {
		t.Fatalf("doomed step ran %d times, want StepAttempts=4", got)
	}
	want := []string{"b", "a"}
	if len(res.Compensated) != 2 || res.Compensated[0] != want[0] || res.Compensated[1] != want[1] {
		t.Fatalf("compensated order = %v, want %v", res.Compensated, want)
	}
	if readObj(t, m, a) != "a0" || readObj(t, m, b) != "b0" {
		t.Fatal("state not restored")
	}
}

// TestSagaTerminalErrorNotRetried: plain application errors abort on the
// first attempt — only transient classes are retried.
func TestSagaTerminalErrorNotRetried(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("a0"))
	var tries atomic.Int32
	s := NewSaga(m).WithOptions(SagaOptions{StepAttempts: 5, Backoff: time.Microsecond}).
		Step("a", func(tx *asset.Tx) error { return tx.Write(a, []byte("a1")) },
			func(tx *asset.Tx) error { return tx.Write(a, []byte("a0")) }).
		Step("boom", func(tx *asset.Tx) error {
			tries.Add(1)
			return errors.New("business rule violated")
		}, nil)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedStep != "boom" {
		t.Fatalf("res = %+v", res)
	}
	if got := tries.Load(); got != 1 {
		t.Fatalf("terminal step ran %d times, want 1", got)
	}
	if readObj(t, m, a) != "a0" {
		t.Fatal("state not restored")
	}
}

// TestParallelSagaRetriesTransientSteps: RunParallel gives each concurrent
// component the same retry budget, so flaky-but-recoverable steps commit.
func TestParallelSagaRetriesTransientSteps(t *testing.T) {
	m := newMem(t)
	var oids [3]asset.OID
	for i := range oids {
		oids[i] = seed(t, m, []byte("-"))
	}
	var tries [3]atomic.Int32
	s := NewSaga(m).WithOptions(SagaOptions{StepAttempts: 5, Backoff: time.Microsecond})
	for i := range oids {
		i := i
		oid := oids[i]
		name := string(rune('a' + i))
		s.Step(name, func(tx *asset.Tx) error {
			if tries[i].Add(1) < 2 {
				return fmt.Errorf("warmup wobble: %w", asset.ErrRetryable)
			}
			return tx.Write(oid, []byte(name))
		}, nil)
	}
	res, err := s.RunParallel()
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if len(res.Committed) != 3 {
		t.Fatalf("committed = %v", res.Committed)
	}
	for i := range tries {
		if got := tries[i].Load(); got != 2 {
			t.Fatalf("step %d ran %d times, want 2", i, got)
		}
	}
}
