package models

import (
	"errors"
	"fmt"
	"sync"

	asset "repro"
)

// SagaStep is one component transaction of a saga with its compensating
// transaction. Compensation may be nil for the final step (the paper notes
// tn needs no compensation) or for steps with no external effects.
type SagaStep struct {
	Name       string
	Action     asset.TxnFunc
	Compensate asset.TxnFunc
}

// Saga is the §3.1.6 model: a sequence of component transactions that
// commit independently (releasing their locks early), with compensating
// transactions run in reverse order if a later component aborts. Build one
// with NewSaga, add steps with Step, and execute with Run.
type Saga struct {
	m     *asset.Manager
	steps []SagaStep
	// CompensationRetries bounds the retry loop for a compensating
	// transaction ("a compensating transaction must be retried until it
	// finally commits"); 0 means the default of 100.
	CompensationRetries int
}

// NewSaga returns an empty saga over m.
func NewSaga(m *asset.Manager) *Saga { return &Saga{m: m} }

// Step appends a component transaction with its compensation and returns
// the saga for chaining.
func (s *Saga) Step(name string, action, compensate asset.TxnFunc) *Saga {
	s.steps = append(s.steps, SagaStep{Name: name, Action: action, Compensate: compensate})
	return s
}

// SagaResult reports how a saga execution unfolded.
type SagaResult struct {
	// Committed lists the component steps that committed, in order.
	Committed []string
	// FailedStep is the step whose component transaction aborted ("" if
	// the saga committed).
	FailedStep string
	// Compensated lists the compensating transactions that ran, in the
	// order they committed (reverse order of the components).
	Compensated []string
}

// Err returns nil if the saga committed and an error describing the
// abort-and-compensate outcome otherwise.
func (r *SagaResult) Err() error {
	if r.FailedStep == "" {
		return nil
	}
	return fmt.Errorf("models: saga aborted at step %q (%d steps compensated): %w",
		r.FailedStep, len(r.Compensated), asset.ErrAborted)
}

// RunParallel executes every component transaction concurrently — the
// generalization Garcia-Molina & Salem sketch for sagas whose components
// are independent. If any component aborts, the components that committed
// are compensated (reverse declaration order, each retried until commit).
// Components must be mutually independent; components touching the same
// objects serialize on their locks like any transactions.
func (s *Saga) RunParallel() (*SagaResult, error) {
	res := &SagaResult{}
	errs := make([]error, len(s.steps))
	var wg sync.WaitGroup
	for i := range s.steps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Atomic(s.m, s.steps[i].Action)
		}(i)
	}
	wg.Wait()
	failed := -1
	for i, err := range errs {
		if err == nil {
			res.Committed = append(res.Committed, s.steps[i].Name)
			continue
		}
		if !errors.Is(err, asset.ErrAborted) && !errors.Is(err, asset.ErrDeadlock) {
			return res, err
		}
		if failed < 0 {
			failed = i
			res.FailedStep = s.steps[i].Name
		}
	}
	if failed < 0 {
		return res, nil
	}
	retries := s.CompensationRetries
	if retries <= 0 {
		retries = 100
	}
	for i := len(s.steps) - 1; i >= 0; i-- {
		if errs[i] != nil || s.steps[i].Compensate == nil {
			continue
		}
		var lastErr error
		done := false
		for attempt := 0; attempt < retries; attempt++ {
			if lastErr = Atomic(s.m, s.steps[i].Compensate); lastErr == nil {
				done = true
				break
			}
		}
		if !done {
			return res, fmt.Errorf("models: compensation %q did not commit after %d attempts: %w",
				s.steps[i].Name, retries, lastErr)
		}
		res.Compensated = append(res.Compensated, s.steps[i].Name)
	}
	return res, nil
}

// Run executes the saga per the paper's translation: each component runs
// as an ordinary atomic transaction (initiate; begin; commit) and commits
// before the next starts; if component k fails, compensations ct_{k-1}..ct_1
// run in reverse order, each retried until it commits. The returned
// result's Err method distinguishes commit from compensated abort.
func (s *Saga) Run() (*SagaResult, error) {
	res := &SagaResult{}
	failed := -1
	for i, step := range s.steps {
		if err := Atomic(s.m, step.Action); err != nil {
			if !errors.Is(err, asset.ErrAborted) && !errors.Is(err, asset.ErrDeadlock) {
				return res, err // infrastructure error, not a component abort
			}
			res.FailedStep = step.Name
			failed = i
			break
		}
		res.Committed = append(res.Committed, step.Name)
	}
	if failed < 0 {
		return res, nil
	}
	// Compensate committed components in reverse order of commitment.
	retries := s.CompensationRetries
	if retries <= 0 {
		retries = 100
	}
	for i := failed - 1; i >= 0; i-- {
		step := s.steps[i]
		if step.Compensate == nil {
			continue
		}
		var lastErr error
		committed := false
		for attempt := 0; attempt < retries; attempt++ {
			if lastErr = Atomic(s.m, step.Compensate); lastErr == nil {
				committed = true
				break
			}
		}
		if !committed {
			return res, fmt.Errorf("models: compensation %q did not commit after %d attempts: %w",
				step.Name, retries, lastErr)
		}
		res.Compensated = append(res.Compensated, step.Name)
	}
	return res, nil
}
