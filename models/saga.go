package models

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	asset "repro"
)

// SagaStep is one component transaction of a saga with its compensating
// transaction. Compensation may be nil for the final step (the paper notes
// tn needs no compensation) or for steps with no external effects.
type SagaStep struct {
	Name       string
	Action     asset.TxnFunc
	Compensate asset.TxnFunc
}

// SagaOptions configures retry behaviour for a saga's components and
// compensations.
type SagaOptions struct {
	// StepAttempts is the attempt budget per component transaction:
	// transient failures (deadlock victims, lock timeouts, overload
	// sheds, anything tagged asset.ErrRetryable) are retried with backoff
	// that many times before the saga gives up on the step and
	// compensates. <=0 means 3.
	StepAttempts int
	// Backoff is the delay before a step's second attempt, doubling per
	// attempt (with jitter) up to MaxBackoff; it also paces compensation
	// retries. <=0 means 1ms.
	Backoff time.Duration
	// MaxBackoff caps the backoff; <=0 means 64ms.
	MaxBackoff time.Duration
}

// Saga is the §3.1.6 model: a sequence of component transactions that
// commit independently (releasing their locks early), with compensating
// transactions run in reverse order if a later component aborts. Build one
// with NewSaga, add steps with Step, and execute with Run.
type Saga struct {
	m     *asset.Manager
	steps []SagaStep
	// CompensationRetries bounds the retry loop for a compensating
	// transaction ("a compensating transaction must be retried until it
	// finally commits"); 0 means the default of 100.
	CompensationRetries int
	// Options shapes step retry and backoff; the zero value gives each
	// component 3 attempts with 1ms..64ms backoff.
	Options SagaOptions
}

// NewSaga returns an empty saga over m.
func NewSaga(m *asset.Manager) *Saga { return &Saga{m: m} }

// WithOptions sets the saga's retry options and returns it for chaining.
func (s *Saga) WithOptions(o SagaOptions) *Saga {
	s.Options = o
	return s
}

// runStep executes one component transaction under the saga's retry
// budget: transient failures restart the step (fresh transaction, capped
// exponential backoff) via the Run engine.
func (s *Saga) runStep(fn asset.TxnFunc) error {
	attempts := s.Options.StepAttempts
	if attempts <= 0 {
		attempts = 3
	}
	return asset.Run(context.Background(), s.m, asset.RunOptions{
		MaxAttempts: attempts,
		BaseBackoff: s.Options.Backoff,
		MaxBackoff:  s.Options.MaxBackoff,
	}, fn)
}

// stepAborted reports whether a step's error means the component
// definitively aborted (compensate and stop) as opposed to an
// infrastructure error that should surface unchanged. Exhausting the
// retry budget on transient failures counts as an abort: the saga's
// contract is that a failed component triggers compensation.
func stepAborted(err error) bool {
	return errors.Is(err, asset.ErrAborted) ||
		errors.Is(err, asset.ErrDeadlock) ||
		asset.Retryable(err)
}

// compensationPause sleeps before compensation attempt n (n>=1), pacing
// the "retry until it finally commits" loop so it does not spin against a
// transient conflict.
func (s *Saga) compensationPause(n int) {
	base := s.Options.Backoff
	if base <= 0 {
		base = time.Millisecond
	}
	maxB := s.Options.MaxBackoff
	if maxB <= 0 {
		maxB = 64 * time.Millisecond
	}
	d := base << uint(min(n-1, 20))
	if d <= 0 || d > maxB {
		d = maxB
	}
	time.Sleep(d)
}

// Step appends a component transaction with its compensation and returns
// the saga for chaining.
func (s *Saga) Step(name string, action, compensate asset.TxnFunc) *Saga {
	s.steps = append(s.steps, SagaStep{Name: name, Action: action, Compensate: compensate})
	return s
}

// SagaResult reports how a saga execution unfolded.
type SagaResult struct {
	// Committed lists the component steps that committed, in order.
	Committed []string
	// FailedStep is the step whose component transaction aborted ("" if
	// the saga committed).
	FailedStep string
	// Compensated lists the compensating transactions that ran, in the
	// order they committed (reverse order of the components).
	Compensated []string
}

// Err returns nil if the saga committed and an error describing the
// abort-and-compensate outcome otherwise.
func (r *SagaResult) Err() error {
	if r.FailedStep == "" {
		return nil
	}
	return fmt.Errorf("models: saga aborted at step %q (%d steps compensated): %w",
		r.FailedStep, len(r.Compensated), asset.ErrAborted)
}

// RunParallel executes every component transaction concurrently — the
// generalization Garcia-Molina & Salem sketch for sagas whose components
// are independent. If any component aborts, the components that committed
// are compensated (reverse declaration order, each retried until commit).
// Components must be mutually independent; components touching the same
// objects serialize on their locks like any transactions.
func (s *Saga) RunParallel() (*SagaResult, error) {
	res := &SagaResult{}
	errs := make([]error, len(s.steps))
	var wg sync.WaitGroup
	for i := range s.steps {
		wg.Add(1)
		//asset:goroutine joined-by=waitgroup
		go func(i int) {
			defer wg.Done()
			errs[i] = s.runStep(s.steps[i].Action)
		}(i)
	}
	wg.Wait()
	failed := -1
	for i, err := range errs {
		if err == nil {
			res.Committed = append(res.Committed, s.steps[i].Name)
			continue
		}
		if !stepAborted(err) {
			return res, err
		}
		if failed < 0 {
			failed = i
			res.FailedStep = s.steps[i].Name
		}
	}
	if failed < 0 {
		return res, nil
	}
	retries := s.CompensationRetries
	if retries <= 0 {
		retries = 100
	}
	for i := len(s.steps) - 1; i >= 0; i-- {
		if errs[i] != nil || s.steps[i].Compensate == nil {
			continue
		}
		var lastErr error
		done := false
		for attempt := 0; attempt < retries; attempt++ {
			if attempt > 0 {
				s.compensationPause(attempt)
			}
			if lastErr = Atomic(s.m, s.steps[i].Compensate); lastErr == nil {
				done = true
				break
			}
		}
		if !done {
			return res, fmt.Errorf("models: compensation %q did not commit after %d attempts: %w",
				s.steps[i].Name, retries, lastErr)
		}
		res.Compensated = append(res.Compensated, s.steps[i].Name)
	}
	return res, nil
}

// Run executes the saga per the paper's translation: each component runs
// as an ordinary atomic transaction (initiate; begin; commit) and commits
// before the next starts; if component k fails, compensations ct_{k-1}..ct_1
// run in reverse order, each retried until it commits. The returned
// result's Err method distinguishes commit from compensated abort.
func (s *Saga) Run() (*SagaResult, error) {
	res := &SagaResult{}
	failed := -1
	for i, step := range s.steps {
		if err := s.runStep(step.Action); err != nil {
			if !stepAborted(err) {
				return res, err // infrastructure error, not a component abort
			}
			res.FailedStep = step.Name
			failed = i
			break
		}
		res.Committed = append(res.Committed, step.Name)
	}
	if failed < 0 {
		return res, nil
	}
	// Compensate committed components in reverse order of commitment.
	retries := s.CompensationRetries
	if retries <= 0 {
		retries = 100
	}
	for i := failed - 1; i >= 0; i-- {
		step := s.steps[i]
		if step.Compensate == nil {
			continue
		}
		var lastErr error
		committed := false
		for attempt := 0; attempt < retries; attempt++ {
			if attempt > 0 {
				s.compensationPause(attempt)
			}
			if lastErr = Atomic(s.m, step.Compensate); lastErr == nil {
				committed = true
				break
			}
		}
		if !committed {
			return res, fmt.Errorf("models: compensation %q did not commit after %d attempts: %w",
				step.Name, retries, lastErr)
		}
		res.Compensated = append(res.Compensated, step.Name)
	}
	return res, nil
}
