package models

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	asset "repro"
)

func TestParallelSagaAllCommit(t *testing.T) {
	m := newMem(t)
	var oids [4]asset.OID
	for i := range oids {
		oids[i] = seed(t, m, []byte("-"))
	}
	s := NewSaga(m)
	for i := range oids {
		oid := oids[i]
		name := string(rune('a' + i))
		s.Step(name, func(tx *asset.Tx) error { return tx.Write(oid, []byte(name)) }, nil)
	}
	res, err := s.RunParallel()
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if len(res.Committed) != 4 {
		t.Fatalf("committed = %v", res.Committed)
	}
	for i, oid := range oids {
		if got := readObj(t, m, oid); got != string(rune('a'+i)) {
			t.Fatalf("oid %d = %q", i, got)
		}
	}
}

func TestParallelSagaCompensatesCommittedOnFailure(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("a0"))
	b := seed(t, m, []byte("b0"))
	var compensated atomic.Int32
	s := NewSaga(m).
		Step("a", func(tx *asset.Tx) error { return tx.Write(a, []byte("a1")) },
			func(tx *asset.Tx) error { compensated.Add(1); return tx.Write(a, []byte("a0")) }).
		Step("b", func(tx *asset.Tx) error { return tx.Write(b, []byte("b1")) },
			func(tx *asset.Tx) error { compensated.Add(1); return tx.Write(b, []byte("b0")) }).
		Step("boom", func(tx *asset.Tx) error { return errors.New("fail") }, nil)
	res, err := s.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil || res.FailedStep != "boom" {
		t.Fatalf("res = %+v", res)
	}
	if compensated.Load() != 2 {
		t.Fatalf("compensations = %d, want 2", compensated.Load())
	}
	if readObj(t, m, a) != "a0" || readObj(t, m, b) != "b0" {
		t.Fatal("state not restored")
	}
	// Compensations run in reverse declaration order.
	want := []string{"b", "a"}
	if len(res.Compensated) != 2 || res.Compensated[0] != want[0] || res.Compensated[1] != want[1] {
		t.Fatalf("compensated order = %v, want %v", res.Compensated, want)
	}
}

func TestParallelSagaIndependentStepsActuallyOverlap(t *testing.T) {
	m := newMem(t)
	gateA := make(chan struct{})
	gateB := make(chan struct{})
	// Each step unblocks the other: only concurrent execution completes.
	s := NewSaga(m).
		Step("a", func(tx *asset.Tx) error {
			close(gateA)
			<-gateB
			return nil
		}, nil).
		Step("b", func(tx *asset.Tx) error {
			close(gateB)
			<-gateA
			return nil
		}, nil)
	res, err := s.RunParallel()
	if err != nil || res.Err() != nil {
		t.Fatalf("parallel steps deadlocked or failed: %v %v", err, res.Err())
	}
	got := append([]string(nil), res.Committed...)
	sort.Strings(got)
	if len(got) != 2 {
		t.Fatalf("committed = %v", got)
	}
}
