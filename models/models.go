// Package models builds the extended transaction models of §3 of the ASSET
// paper out of the transaction primitives, playing the role of the code an
// O++ compiler would generate:
//
//   - Atomic (§3.1.1) and AtomicRetry — flat ACID transactions;
//   - Distributed (§3.1.2) — parallel components with group commit;
//   - Contingent (§3.1.3) — at most one of an ordered list commits;
//   - Nested (§3.1.4) — subtransactions via permit + delegate;
//   - Split/Join (§3.1.5) — delegation-based transaction restructuring;
//   - Saga (§3.1.6) — a sequence of ACID steps with compensations;
//   - Cooperate (§3.2.1) — permit ping-pong under commit dependencies;
//   - Cursor stability (§3.2.2) — post-read write permits during scans.
package models

import (
	"errors"
	"fmt"

	asset "repro"
)

// Atomic runs fn as one flat transaction — the paper's §3.1.1 translation
// (initiate; begin; commit). It returns the body's error if the transaction
// aborted, or the commit error.
func Atomic(m *asset.Manager, fn asset.TxnFunc) error {
	t, err := m.Initiate(fn)
	if err != nil {
		return err
	}
	if err := m.Begin(t); err != nil {
		return err
	}
	return m.Commit(t)
}

// AtomicRetry runs fn as an atomic transaction, retrying up to attempts
// times when the transaction is chosen as a deadlock victim. Application
// errors abort without retry.
func AtomicRetry(m *asset.Manager, attempts int, fn asset.TxnFunc) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = Atomic(m, fn)
		if err == nil {
			return nil
		}
		// Commit reports the abort reason; retry only deadlock victims
		// (whether the body saw ErrDeadlock or the victim callback struck).
		if errors.Is(err, asset.ErrDeadlock) {
			continue
		}
		return err
	}
	return fmt.Errorf("models: transaction failed after %d deadlock retries: %w", attempts, err)
}

// Distributed runs the component functions in parallel with pairwise group
// commit dependencies and commits them as one group (§3.1.2): either every
// component commits or none does. It returns nil when the group committed.
func Distributed(m *asset.Manager, fns ...asset.TxnFunc) error {
	if len(fns) == 0 {
		return nil
	}
	tids := make([]asset.TID, len(fns))
	for i, fn := range fns {
		t, err := m.Initiate(fn)
		if err != nil {
			for _, prev := range tids[:i] {
				m.Abort(prev)
			}
			return err
		}
		tids[i] = t
	}
	// Pairwise GC dependencies make the set a single commit group.
	for i := 1; i < len(tids); i++ {
		if err := m.FormDependency(asset.GC, tids[i-1], tids[i]); err != nil {
			for _, t := range tids {
				m.Abort(t)
			}
			return err
		}
	}
	if err := m.Begin(tids...); err != nil {
		return err
	}
	// Committing any one component commits the whole group; the paper
	// commits t1 and lets the rest follow.
	return m.Commit(tids[0])
}

// Contingent runs the alternatives in order until one commits (§3.1.3). It
// returns the index of the committed alternative, or -1 and the last error
// when every alternative aborted.
func Contingent(m *asset.Manager, fns ...asset.TxnFunc) (int, error) {
	var last error = asset.ErrAborted
	for i, fn := range fns {
		t, err := m.Initiate(fn)
		if err != nil {
			return -1, err
		}
		if err := m.Begin(t); err != nil {
			return -1, err
		}
		if err := m.Commit(t); err == nil {
			return i, nil
		} else {
			last = err
		}
	}
	return -1, last
}
