package asset_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	asset "repro"
	"repro/models"
)

// TestTortureMixedModels runs a storm of concurrent activities that mix the
// transaction models — flat transfers, nested transfers (each leg a
// subtransaction), saga transfers (debit and credit as separate compensable
// steps), and random aborts — and checks that the money-conservation
// invariant survives every interleaving. The storm repeats across
// lock-table shard counts: 1 reproduces the pre-sharding serial table, 4
// forces constant cross-shard traffic for multi-object transactions, 64 is
// the default layout.
func TestTortureMixedModels(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			tortureMixedModels(t, asset.Config{LockShards: shards}, int64(shards)*101)
		})
	}
}

func tortureMixedModels(t *testing.T, cfg asset.Config, seedBase int64) {
	m, err := asset.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const nAccounts = 6
	const initial = 1000
	accounts := make([]asset.OID, nAccounts)
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := range accounts {
			var err error
			if accounts[i], err = tx.Create(u64(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	debit := func(tx *asset.Tx, acct asset.OID, amount uint64) error {
		b, err := tx.Read(acct)
		if err != nil {
			return err
		}
		v := binary.LittleEndian.Uint64(b)
		if v < amount {
			return errSkip
		}
		return tx.Write(acct, u64(v-amount))
	}
	credit := func(tx *asset.Tx, acct asset.OID, amount uint64) error {
		b, err := tx.Read(acct)
		if err != nil {
			return err
		}
		return tx.Write(acct, u64(binary.LittleEndian.Uint64(b)+amount))
	}

	var wg sync.WaitGroup
	fatal := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			seed += seedBase
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				from := accounts[rng.Intn(nAccounts)]
				to := accounts[rng.Intn(nAccounts)]
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(20) + 1)
				sabotage := rng.Intn(5) == 0
				var err error
				switch rng.Intn(3) {
				case 0: // flat transfer
					err = models.AtomicRetry(m, 25, func(tx *asset.Tx) error {
						if err := debit(tx, from, amount); err != nil {
							return err
						}
						if err := credit(tx, to, amount); err != nil {
							return err
						}
						if sabotage {
							return errSabotage
						}
						return nil
					})
				case 1: // nested: each leg is a subtransaction
					err = models.AtomicRetry(m, 25, func(tx *asset.Tx) error {
						if err := models.Sub(tx, func(c *asset.Tx) error {
							return debit(c, from, amount)
						}); err != nil {
							return err
						}
						if err := models.Sub(tx, func(c *asset.Tx) error {
							if sabotage {
								return errSabotage
							}
							return credit(c, to, amount)
						}); err != nil {
							return err
						}
						return nil
					})
				case 2: // saga: compensable debit, then credit (maybe failing)
					var res *models.SagaResult
					res, err = models.NewSaga(m).
						Step("debit",
							func(tx *asset.Tx) error { return debit(tx, from, amount) },
							func(tx *asset.Tx) error { return credit(tx, from, amount) }).
						Step("credit",
							func(tx *asset.Tx) error {
								if sabotage {
									return errSabotage
								}
								return credit(tx, to, amount)
							}, nil).
						Run()
					if err == nil && res.Err() != nil {
						err = nil // compensated abort is a clean outcome
					}
				}
				if err != nil && !errors.Is(err, asset.ErrAborted) {
					fatal <- fmt.Errorf("worker %d op %d: %w", seed, i, err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	select {
	case err := <-fatal:
		t.Fatal(err)
	default:
	}

	var total uint64
	for _, acct := range accounts {
		b, ok := m.Cache().Read(acct)
		if !ok {
			t.Fatalf("account %v vanished", acct)
		}
		total += binary.LittleEndian.Uint64(b)
	}
	if total != nAccounts*initial {
		t.Fatalf("money not conserved under mixed models: %d, want %d", total, nAccounts*initial)
	}
	st := m.Stats()
	t.Logf("commits=%d aborts=%d deadlock victims=%d", st.Commits, st.Aborts, st.Deadlocks)
}

// TestTortureCancellation storms the resilience layer: concurrent hotspot
// transfers where contexts are cancelled at random moments (sometimes while
// the transaction is blocked on a lock or parked in the commit protocol),
// per-transaction deadlines expire under the watchdog, and the Run engine
// retries the victims. After the storm the manager must be quiescent — no
// leaked transactions, an empty waits-for graph, clean lock-table
// invariants — and money conserved.
func TestTortureCancellation(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			tortureCancellation(t,
				asset.Config{LockShards: shards, ReapTerminated: true},
				int64(shards)*7919)
		})
	}
}

func tortureCancellation(t *testing.T, cfg asset.Config, seedBase int64) {
	m, err := asset.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const nAccounts = 6
	const initial = 1000
	accounts := make([]asset.OID, nAccounts)
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := range accounts {
			var err error
			if accounts[i], err = tx.Create(u64(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// pause > 0 dawdles between the two legs while holding the debit lock,
	// so deadlines and cancellations land mid-transaction.
	transfer := func(from, to asset.OID, amount uint64, pause time.Duration) asset.TxnFunc {
		return func(tx *asset.Tx) error {
			b, err := tx.Read(from)
			if err != nil {
				return err
			}
			v := binary.LittleEndian.Uint64(b)
			if v < amount {
				return errSkip
			}
			if err := tx.Write(from, u64(v-amount)); err != nil {
				return err
			}
			if pause > 0 {
				time.Sleep(pause)
			}
			b, err = tx.Read(to)
			if err != nil {
				return err
			}
			return tx.Write(to, u64(binary.LittleEndian.Uint64(b)+amount))
		}
	}
	// Every way a stormed transaction may legitimately end.
	acceptable := func(err error) bool {
		return errors.Is(err, asset.ErrAborted) ||
			errors.Is(err, asset.ErrRetryable) ||
			errors.Is(err, asset.ErrTxnDeadline) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}

	var wg sync.WaitGroup
	fatal := make(chan error, 16)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			seed += seedBase
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				from := accounts[rng.Intn(nAccounts)]
				to := accounts[rng.Intn(nAccounts)]
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(20) + 1)
				var pause time.Duration
				if rng.Intn(4) == 0 {
					pause = time.Duration(rng.Intn(2000)) * time.Microsecond
				}
				fn := transfer(from, to, amount, pause)
				opts := asset.RunOptions{MaxAttempts: 10, BaseBackoff: 50 * time.Microsecond}
				var err error
				switch rng.Intn(4) {
				case 0: // undisturbed
					err = asset.Run(context.Background(), m, opts, fn)
				case 1: // ctx deadline, possibly already expired on arrival
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(rng.Intn(3))*time.Millisecond)
					err = asset.Run(ctx, m, opts, fn)
					cancel()
				case 2: // asynchronous cancellation at a random moment
					ctx, cancel := context.WithCancel(context.Background())
					go func(d time.Duration) {
						time.Sleep(d)
						cancel()
					}(time.Duration(rng.Intn(2000)) * time.Microsecond)
					err = asset.Run(ctx, m, opts, fn)
				case 3: // per-transaction deadline enforced by the watchdog
					o := opts
					o.MaxAttempts = 2
					o.Deadline = time.Duration(rng.Intn(2000)+100) * time.Microsecond
					if rng.Intn(4) == 0 {
						// Outlive the deadline for sure: the watchdog
						// (10ms tick) must reap this one mid-body.
						fn = transfer(from, to, amount, 12*time.Millisecond)
					}
					err = asset.Run(context.Background(), m, o, fn)
				}
				if err != nil && !acceptable(err) {
					fatal <- fmt.Errorf("worker %d op %d: %w", seed, i, err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	select {
	case err := <-fatal:
		t.Fatal(err)
	default:
	}

	// Quiescence: watcher goroutines and abort cascades may still be
	// draining for a moment after the last Run returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(m.Transactions()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked transactions after storm: %+v", m.Transactions())
		}
		time.Sleep(time.Millisecond)
	}
	if ws := m.WaitGraph().Waiters(); len(ws) != 0 {
		t.Fatalf("waits-for graph not empty after storm: %v", ws)
	}
	// An aborted waiter's pending lock request lingers until its parked
	// goroutine wakes and dequeues itself; allow that beat to settle.
	for {
		errs := m.LockManager().CheckInvariants()
		if len(errs) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock invariants violated after storm: %v", errs)
		}
		time.Sleep(time.Millisecond)
	}

	var total uint64
	for _, acct := range accounts {
		b, ok := m.Cache().Read(acct)
		if !ok {
			t.Fatalf("account %v vanished", acct)
		}
		total += binary.LittleEndian.Uint64(b)
	}
	if total != nAccounts*initial {
		t.Fatalf("money not conserved under cancellation storm: %d, want %d",
			total, nAccounts*initial)
	}
	st := m.Stats()
	t.Logf("commits=%d aborts=%d deadlocks=%d reaped=%d expired=%d cancelled=%d retries=%d",
		st.Commits, st.Aborts, st.Deadlocks, st.Reaped, st.Expired, st.Cancelled, st.Retries)
}

var (
	errSkip     = errors.New("insufficient funds")
	errSabotage = errors.New("sabotage")
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// TestNestedCrossParentDeadlock pins the deadlock the torture test first
// exposed: parent P1 waits (via wait(child)) for a child that needs a lock
// held by parent P2, while P2 symmetrically waits for a child that needs
// P1's lock. The parents' waits are channel waits, invisible to lock-level
// detection alone — Tx.Wait must register them in the waits-for graph so
// a victim is selected instead of hanging forever.
func TestNestedCrossParentDeadlock(t *testing.T) {
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var oa, ob asset.OID
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		if oa, err = tx.Create(u64(0)); err != nil {
			return err
		}
		ob, err = tx.Create(u64(0))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	bothHold := make(chan struct{}, 2)
	proceed := make(chan struct{})
	parent := func(first, second asset.OID) asset.TxnFunc {
		return func(tx *asset.Tx) error {
			// Child 1 locks `first`; its lock is delegated to the parent.
			if err := models.Sub(tx, func(c *asset.Tx) error {
				return c.Write(first, u64(1))
			}); err != nil {
				return err
			}
			bothHold <- struct{}{}
			<-proceed
			// Child 2 needs `second`, held by the other parent.
			return models.Sub(tx, func(c *asset.Tx) error {
				return c.Write(second, u64(2))
			})
		}
	}
	p1, _ := m.Initiate(parent(oa, ob))
	p2, _ := m.Initiate(parent(ob, oa))
	if err := m.Begin(p1, p2); err != nil {
		t.Fatal(err)
	}
	<-bothHold
	<-bothHold
	close(proceed)

	res := make(chan error, 2)
	go func() { res <- m.Commit(p1) }()
	go func() { res <- m.Commit(p2) }()
	for i := 0; i < 2; i++ {
		select {
		case <-res:
		case <-time.After(15 * time.Second):
			t.Fatal("nested cross-parent deadlock not resolved: commit hung")
		}
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("no deadlock victim recorded")
	}
	// At least one parent survives; state stays consistent (each object
	// was written by a committed chain or rolled back).
	st := m.Stats()
	t.Logf("commits=%d aborts=%d victims=%d", st.Commits, st.Aborts, st.Deadlocks)
}
