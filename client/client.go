// Package client is the fault-tolerant ASSET client: it speaks the
// internal/rpc protocol to an assetd server and hides network failure
// behind the same error-classification contract local code gets from
// core.
//
// The machinery, bottom up:
//
//   - Every request gets a session-unique ID and stays in the pending
//     table until its response arrives or its context dies. A
//     retransmit ticker re-sends unanswered requests (the server
//     deduplicates, so at-least-once delivery is safe), and the request
//     piggybacks an ack watermark that licenses the server to prune its
//     completed-request table.
//   - Connections are expendable; the session is not. When a
//     connection dies — or a heartbeat probe times out, which is how a
//     one-way partition is detected — the client redials and resumes
//     the session by token. Responses to retransmitted requests carry
//     the original verdicts.
//   - If the lease expired while the client was away, in-flight commits
//     are not blindly retried: the client opens a fresh session and,
//     when the server's epoch proves it is the same incarnation, asks
//     for the recorded status of each in-doubt transaction. A changed
//     epoch means the verdict is unlearnable: ErrUnknownOutcome,
//     terminal by design.
//   - Run drives transaction bodies through core.Retry — the same
//     backoff engine local transactions use — with transport errors
//     (ErrConnLost) and lease expiries classified retryable, and server
//     overload hints flooring the backoff.
//
// Latch order: Client.mu (2) is outermost, the per-connection write
// latch (3) inside it; neither is ever held across a blocking read,
// dial, or backoff sleep.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/xid"
)

// Options configures a client.
type Options struct {
	// Dial opens a transport connection to the server (required).
	Dial func(ctx context.Context) (net.Conn, error)
	// RetransmitEvery is the resend cadence for unanswered requests and
	// the redial cadence while disconnected; 0 means 25ms.
	RetransmitEvery time.Duration
	// HeartbeatEvery is the lease-renewal cadence; 0 derives a third of
	// the server's lease TTL from the handshake.
	HeartbeatEvery time.Duration
	// ProbeTimeout bounds how long an unanswered heartbeat is tolerated
	// before the connection is declared dead (one-way partitions leave
	// the socket "healthy" while eating every response); 0 derives from
	// HeartbeatEvery.
	ProbeTimeout time.Duration
	// HandshakeTimeout bounds the synchronous hello exchange on a fresh
	// connection; 0 means 2s. Lower it together with RetransmitEvery: a
	// hello frame the network eats stalls the whole client (the dial
	// path is single-flight) until this deadline expires and the redial
	// loop tries again.
	HandshakeTimeout time.Duration
}

// handshakeTimeout returns the configured hello deadline.
func (c *Client) handshakeTimeout() time.Duration {
	if c.opts.HandshakeTimeout > 0 {
		return c.opts.HandshakeTimeout
	}
	return 2 * time.Second
}

// Client is a fault-tolerant connection to one assetd server. Safe for
// concurrent use.
type Client struct {
	opts Options

	// mu guards the session/connection state and the pending table.
	// Never held across dial, frame I/O on the read path, or sleeps.
	//asset:latch order=2
	mu      sync.Mutex
	conn    *cliConn
	dialing chan struct{} // single-flight redial; nil when idle
	sess    uint64
	epoch   uint64
	ttl     time.Duration
	nextReq uint64
	pending map[uint64]*call
	closed  bool

	closeCh chan struct{}
	wg      sync.WaitGroup
}

// call is one in-flight request.
type call struct {
	req  *rpc.Request
	done chan *rpc.Response // buffered(1)
}

// cliConn serializes frame writes on one transport connection.
type cliConn struct {
	//asset:latch order=3
	mu sync.Mutex
	c  net.Conn
}

func (c *cliConn) send(req *rpc.Request) error {
	payload := rpc.EncodeRequest(req)
	c.mu.Lock()
	defer c.mu.Unlock()
	return rpc.WriteFrame(c.c, payload)
}

// Dial connects to the server and establishes a session.
func Dial(ctx context.Context, opts Options) (*Client, error) {
	if opts.Dial == nil {
		return nil, errors.New("client: Options.Dial is required")
	}
	if opts.RetransmitEvery <= 0 {
		opts.RetransmitEvery = 25 * time.Millisecond
	}
	c := &Client{
		opts:    opts,
		pending: make(map[uint64]*call),
		closeCh: make(chan struct{}),
	}
	if _, err := c.ensureConn(ctx); err != nil {
		return nil, err
	}
	c.wg.Add(2)
	//asset:goroutine joined-by=waitgroup
	go c.retransmitLoop()
	//asset:goroutine joined-by=waitgroup
	go c.heartbeatLoop()
	return c, nil
}

// Close ends the session (best-effort Bye) and fails every pending call
// with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	sess := c.sess
	pend := c.drainPendingLocked()
	c.mu.Unlock()
	close(c.closeCh)
	if conn != nil && sess != 0 {
		conn.send(&rpc.Request{Op: rpc.OpBye}) //nolint:errcheck
	}
	for _, cl := range pend {
		failCall(cl, fmt.Errorf("client: closed: %w", core.ErrClosed))
	}
	if conn != nil {
		conn.c.Close()
	}
	c.wg.Wait()
	return nil
}

func (c *Client) drainPendingLocked() []*call {
	out := make([]*call, 0, len(c.pending))
	for _, cl := range c.pending {
		out = append(out, cl)
	}
	c.pending = make(map[uint64]*call)
	return out
}

func failCall(cl *call, err error) {
	var resp rpc.Response
	resp.SetError(err, 0)
	select {
	case cl.done <- &resp:
	default:
	}
}

// Session returns the current session token (0 before the first
// successful handshake).
func (c *Client) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess
}

// Epoch returns the server incarnation the client last spoke to.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// ensureConn returns a live connection, redialing (single-flight) if
// necessary. A failed redial round returns ErrConnLost — retryable, so
// Run-level backoff paces reconnection storms.
func (c *Client) ensureConn(ctx context.Context) (*cliConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, fmt.Errorf("client: closed: %w", core.ErrClosed)
		}
		if c.conn != nil {
			conn := c.conn
			c.mu.Unlock()
			return conn, nil
		}
		if c.dialing == nil {
			done := make(chan struct{})
			c.dialing = done
			c.mu.Unlock()
			err := c.redial(ctx)
			c.mu.Lock()
			c.dialing = nil
			c.mu.Unlock()
			close(done)
			if err != nil {
				return nil, err
			}
			continue
		}
		done := c.dialing
		c.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return nil, fmt.Errorf("client: dial wait: %w", ctx.Err())
		case <-c.closeCh:
			return nil, fmt.Errorf("client: closed: %w", core.ErrClosed)
		}
	}
}

// redial opens a transport connection and runs the session handshake,
// resuming the current session when possible and resolving in-doubt
// requests when not.
func (c *Client) redial(ctx context.Context) error {
	c.mu.Lock()
	token := c.sess
	c.mu.Unlock()
	nc, err := c.opts.Dial(ctx)
	if err != nil {
		return fmt.Errorf("client: dial: %w: %w", core.ErrConnLost, err)
	}
	conn := &cliConn{c: nc}
	resp, err := c.hello(conn, token)
	if err != nil {
		if errors.Is(err, core.ErrLeaseExpired) && token != 0 {
			// The session died while we were away. Open a fresh one and
			// resolve what was in flight.
			nc.Close()
			return c.resumeExpired(ctx)
		}
		nc.Close()
		return err
	}
	c.adopt(conn, resp)
	return nil
}

// hello performs the handshake on conn; the response carries session
// token, epoch, and lease TTL. The reply is matched by request ID: on a
// session resume, a dispatch goroutine finishing an old request can race
// its response onto the new connection ahead of the hello reply (or a
// fault script can reorder the frames), and adopting such a frame as the
// handshake would install a garbage token and epoch. Raced responses are
// routed to their pending waiters instead.
func (c *Client) hello(conn *cliConn, token uint64) (*rpc.Response, error) {
	c.mu.Lock()
	c.nextReq++
	req := &rpc.Request{ReqID: c.nextReq, Op: rpc.OpHello, Other: token, Mode: c.epoch}
	c.mu.Unlock()
	if err := conn.send(req); err != nil {
		return nil, fmt.Errorf("client: handshake send: %w: %w", core.ErrConnLost, err)
	}
	// The deadline is absolute, so the loop below is bounded even if the
	// connection keeps yielding non-hello frames.
	conn.c.SetReadDeadline(time.Now().Add(c.handshakeTimeout())) //nolint:errcheck
	defer conn.c.SetReadDeadline(time.Time{})                    //nolint:errcheck
	for {
		payload, err := rpc.ReadFrame(conn.c)
		if err != nil {
			return nil, fmt.Errorf("client: handshake read: %w: %w", core.ErrConnLost, err)
		}
		resp, err := rpc.DecodeResponse(payload)
		if err != nil {
			return nil, fmt.Errorf("client: handshake decode: %w: %w", core.ErrConnLost, err)
		}
		if resp.ReqID != req.ReqID {
			c.deliver(resp)
			continue
		}
		if rerr := resp.Err(); rerr != nil {
			return resp, rerr
		}
		return resp, nil
	}
}

// adopt installs a freshly handshaken connection, starts its read loop,
// and retransmits everything pending (the server deduplicates).
func (c *Client) adopt(conn *cliConn, helloResp *rpc.Response) {
	c.mu.Lock()
	if c.closed {
		// Close ran while this redial was in flight; it cannot have seen
		// this connection, so installing it would leak a readLoop blocked
		// past Close's wg.Wait.
		c.mu.Unlock()
		conn.c.Close()
		return
	}
	c.sess = helloResp.TID
	c.epoch = helloResp.Val
	c.ttl = time.Duration(helloResp.Aux) * time.Microsecond
	c.conn = conn
	resend := c.pendingSnapshotLocked()
	c.mu.Unlock()
	c.wg.Add(1)
	//asset:goroutine joined-by=waitgroup
	go c.readLoop(conn)
	for _, cl := range resend {
		conn.send(cl.req) //nolint:errcheck
	}
}

// resumeExpired handles a dead session: a new session is opened, and
// in-doubt work is resolved — committed-or-not is learned from the
// server when its epoch proves continuity, declared unknown when not.
func (c *Client) resumeExpired(ctx context.Context) error {
	c.mu.Lock()
	oldEpoch := c.epoch
	c.sess = 0
	pend := c.drainPendingLocked()
	c.mu.Unlock()

	nc, err := c.opts.Dial(ctx)
	if err != nil {
		c.failAfterExpiry(pend, oldEpoch, 0)
		return fmt.Errorf("client: dial after lease expiry: %w: %w", core.ErrConnLost, err)
	}
	conn := &cliConn{c: nc}
	resp, err := c.hello(conn, 0)
	if err != nil {
		nc.Close()
		c.failAfterExpiry(pend, oldEpoch, 0)
		return err
	}
	c.adopt(conn, resp)
	c.failAfterExpiry(pend, oldEpoch, resp.Val)

	// In-doubt commits: with epoch continuity the server still knows
	// every verdict durably decided (descriptors are not reaped), so ask.
	if resp.Val == oldEpoch {
		c.resolveInDoubt(ctx, pend)
	}
	return nil
}

// failAfterExpiry resolves calls stranded by a lease expiry. Commits are
// handled by resolveInDoubt when the epoch held; everything else — and
// every commit whose verdict is unlearnable — fails here.
func (c *Client) failAfterExpiry(pend []*call, oldEpoch, newEpoch uint64) {
	for _, cl := range pend {
		if cl.req.Op == rpc.OpCommit && newEpoch != 0 && newEpoch == oldEpoch {
			continue // resolveInDoubt owns it
		}
		if cl.req.Op == rpc.OpCommit {
			failCall(cl, fmt.Errorf("client: commit verdict lost with session (server epoch changed): %w",
				core.ErrUnknownOutcome))
			continue
		}
		failCall(cl, fmt.Errorf("client: request outlived its session: %w", core.ErrLeaseExpired))
	}
}

// resolveInDoubt learns the verdict of each in-doubt commit via a status
// query on the new session. Committed resolves to success — the decision
// was made and must not be re-executed; anything else resolves to
// ErrLeaseExpired (the transaction died with the session; a retry is a
// fresh transaction).
func (c *Client) resolveInDoubt(ctx context.Context, pend []*call) {
	for _, cl := range pend {
		if cl.req.Op != rpc.OpCommit {
			continue
		}
		st, err := c.Status(ctx, xid.TID(cl.req.TID))
		switch {
		case err != nil:
			failCall(cl, fmt.Errorf("client: commit verdict unresolved: %w: %w", core.ErrUnknownOutcome, err))
		case st == xid.StatusCommitted:
			cl.done <- &rpc.Response{ReqID: cl.req.ReqID, Status: byte(st)}
		default:
			failCall(cl, fmt.Errorf("client: transaction %v died with its session (status %v): %w",
				xid.TID(cl.req.TID), st, core.ErrLeaseExpired))
		}
	}
}

func (c *Client) pendingSnapshotLocked() []*call {
	out := make([]*call, 0, len(c.pending))
	for _, cl := range c.pending {
		out = append(out, cl)
	}
	return out
}

// readLoop drains responses from one connection and routes them to
// pending calls; it exits when the connection dies.
func (c *Client) readLoop(conn *cliConn) {
	defer c.wg.Done()
	for {
		payload, err := rpc.ReadFrame(conn.c)
		if err != nil {
			c.dropConn(conn)
			return
		}
		resp, err := rpc.DecodeResponse(payload)
		if err != nil {
			c.dropConn(conn)
			return
		}
		c.deliver(resp)
	}
}

// deliver routes a response to its pending call. Responses for unknown
// request IDs (abandoned, duplicated, or already answered) are dropped.
func (c *Client) deliver(resp *rpc.Response) {
	c.mu.Lock()
	cl := c.pending[resp.ReqID]
	if cl != nil {
		delete(c.pending, resp.ReqID)
	}
	c.mu.Unlock()
	if cl != nil {
		select {
		case cl.done <- resp:
		default:
		}
	}
}

// sessionExpired handles a lease-expired verdict observed on a live
// connection: the server-side session is dead, so pending calls must not
// be left for the retransmit loop — it would replay them onto a fresh
// token-0 session where their TIDs are unknown (turning retryable lease
// expiries into terminal ErrUnknownTxn) and re-execute commits whose
// verdicts may already be decided. Instead the session is forgotten and
// the pending table drained exactly as resumeExpired drains it:
// non-commit calls fail with ErrLeaseExpired, and in-doubt commits are
// resolved against the server's durable state on a fresh session —
// when epoch continuity proves the verdicts are still learnable.
func (c *Client) sessionExpired() {
	c.mu.Lock()
	oldEpoch := c.epoch
	c.sess = 0
	conn := c.conn
	c.conn = nil
	pend := c.drainPendingLocked()
	c.mu.Unlock()
	if conn != nil {
		conn.c.Close()
	}
	if len(pend) == 0 {
		return
	}
	// Detached context: the drained calls belong to other goroutines, so
	// their resolution must not ride the observing caller's deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 2*c.handshakeTimeout())
	defer cancel()
	var newEpoch uint64
	if _, err := c.ensureConn(ctx); err == nil {
		c.mu.Lock()
		newEpoch = c.epoch
		c.mu.Unlock()
	}
	c.failAfterExpiry(pend, oldEpoch, newEpoch)
	if newEpoch != 0 && newEpoch == oldEpoch {
		c.resolveInDoubt(ctx, pend)
	}
}

// dropConn retires a dead connection; the next operation (or the
// retransmit tick) redials.
func (c *Client) dropConn(conn *cliConn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
	conn.c.Close()
}

// ackWatermarkLocked computes the highest request ID below which every
// response has been received or abandoned — the server may prune its
// completed table up to here.
func (c *Client) ackWatermarkLocked() uint64 {
	low := c.nextReq + 1
	for id := range c.pending {
		if id < low {
			low = id
		}
	}
	return low - 1
}

// roundTrip sends one request and waits for its response. Delivery is
// at-least-once (the retransmit loop re-sends through redials); the
// server's dedup table makes execution at-most-once per request ID.
func (c *Client) roundTrip(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	conn, err := c.ensureConn(ctx)
	if err != nil {
		return nil, err
	}
	cl := &call{req: req, done: make(chan *rpc.Response, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: closed: %w", core.ErrClosed)
	}
	c.nextReq++
	req.ReqID = c.nextReq
	// Enter the pending table before computing the ack watermark: the
	// request must count itself as outstanding, or it would ack its own
	// ID and license the server to drop the very verdict it is awaiting.
	c.pending[req.ReqID] = cl
	req.Ack = c.ackWatermarkLocked()
	c.mu.Unlock()
	if err := conn.send(req); err != nil {
		// The request stays pending; redial + retransmit will carry it.
		c.dropConn(conn)
	}
	select {
	case resp := <-cl.done:
		if rerr := resp.Err(); rerr != nil {
			if errors.Is(rerr, core.ErrLeaseExpired) {
				// The session is dead on the server; forget it and drain
				// everything still pending on it. (This call's own verdict is
				// safe: the server answers retransmits from its completed
				// table even on dead sessions, so a lease error on a commit
				// means the commit never executed.)
				c.sessionExpired()
			}
			return resp, rerr
		}
		return resp, nil
	case <-ctx.Done():
		c.abandon(req.ReqID)
		return nil, fmt.Errorf("client: %v abandoned: %w", req.Op, ctx.Err())
	case <-c.closeCh:
		c.abandon(req.ReqID)
		return nil, fmt.Errorf("client: closed: %w", core.ErrClosed)
	}
}

// abandon removes a call whose waiter gave up and tells the server to
// cancel the work (best effort, fire-and-forget).
func (c *Client) abandon(reqID uint64) {
	c.mu.Lock()
	delete(c.pending, reqID)
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.send(&rpc.Request{Op: rpc.OpCancel, Other: reqID}) //nolint:errcheck
	}
}

// retransmitLoop re-sends unanswered requests and keeps redialing while
// disconnected — the engine that turns lost frames into mere latency.
func (c *Client) retransmitLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.RetransmitEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.closeCh:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		conn := c.conn
		resend := c.pendingSnapshotLocked()
		c.mu.Unlock()
		if conn == nil {
			if len(resend) == 0 {
				continue
			}
			// Bounded single redial attempt per tick; failures roll over.
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.RetransmitEvery*4)
			c.ensureConn(ctx) //nolint:errcheck
			cancel()
			continue
		}
		for _, cl := range resend {
			if conn.send(cl.req) != nil {
				c.dropConn(conn)
				break
			}
		}
	}
}

// heartbeatLoop renews the session lease and doubles as the liveness
// probe: an unanswered heartbeat means the connection is dead even if
// the transport looks healthy (one-way partition), so it is retired.
func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		ttl := c.ttl
		c.mu.Unlock()
		every := c.opts.HeartbeatEvery
		if every <= 0 {
			every = ttl / 3
			if every <= 0 {
				every = 500 * time.Millisecond
			}
		}
		probe := c.opts.ProbeTimeout
		if probe <= 0 {
			probe = every
		}
		select {
		case <-c.closeCh:
			return
		case <-time.After(every):
		}
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		if conn == nil {
			continue // retransmit loop owns redialing
		}
		ctx, cancel := context.WithTimeout(context.Background(), probe)
		_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpHeartbeat})
		cancel()
		if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, core.ErrConnLost)) {
			c.dropConn(conn)
		}
	}
}
