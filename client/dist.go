package client

import (
	"context"
	"fmt"

	"repro/internal/rpc"
	"repro/internal/xid"
)

// The distributed-commit surface: a coordinator (txcoord) drives these
// against each participant server. Prepare/Decide ride the session's
// idempotent request machinery, so retransmits across reconnects are safe.

// Prepare asks the server to prepare the GC closure of tids as
// distributed group gid. A nil return is the participant's yes vote —
// the group is durably prepared and immune to unilateral abort until
// Decide delivers the verdict.
func (c *Client) Prepare(ctx context.Context, gid uint64, tids ...xid.TID) error {
	raw := make([]uint64, len(tids))
	for i, t := range tids {
		raw[i] = uint64(t)
	}
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpPrepare, Other: gid, Data: rpc.EncodeTIDs(raw)})
	return err
}

// Decide delivers the coordinator's verdict for group gid to this
// participant. Duplicated and reordered deliveries are idempotent.
func (c *Client) Decide(ctx context.Context, gid uint64, commit bool) error {
	var mode uint64
	if commit {
		mode = 1
	}
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpDecide, Other: gid, Mode: mode})
	return err
}

// QueryVerdict asks the coordinator co-located with this server for
// group gid's durable verdict. Querying an undecided group forces a
// durable abort decision (presumed abort), so the answer is final either
// way — the multi-shot recovery path a restarted participant relies on.
func (c *Client) QueryVerdict(ctx context.Context, gid uint64) (commit bool, err error) {
	resp, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpVerdictQuery, Other: gid})
	if err != nil {
		return false, err
	}
	switch resp.Val {
	case 1:
		return true, nil
	case 2:
		return false, nil
	}
	return false, fmt.Errorf("client: malformed verdict %d for group %d", resp.Val, gid)
}
