package client

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/xid"
)

// This file is the remote ASSET surface: one method per protocol
// operation, mirroring core's primitives, plus the Run engine that
// drives whole transaction bodies through the shared retry policy.

// Initiate creates a transaction on the server (paper: initiate).
func (c *Client) Initiate(ctx context.Context) (xid.TID, error) {
	resp, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpInitiate})
	if err != nil {
		return xid.NilTID, err
	}
	return xid.TID(resp.TID), nil
}

// Begin starts tid executing (paper: begin).
func (c *Client) Begin(ctx context.Context, tid xid.TID) error {
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpBegin, TID: uint64(tid)})
	return err
}

// Commit commits tid and returns the decision (paper: commit). Under
// retransmission the decision is exactly-once: a retried commit fetches
// the recorded verdict, never re-runs the commit protocol.
func (c *Client) Commit(ctx context.Context, tid xid.TID) error {
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpCommit, TID: uint64(tid)})
	return err
}

// Abort aborts tid (paper: abort).
func (c *Client) Abort(ctx context.Context, tid xid.TID) error {
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpAbort, TID: uint64(tid)})
	return err
}

// Wait blocks until tid terminates (paper: wait); nil means committed or
// completed, ErrAborted means aborted.
func (c *Client) Wait(ctx context.Context, tid xid.TID) error {
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpWait, TID: uint64(tid)})
	return err
}

// Status queries tid's status without waiting.
func (c *Client) Status(ctx context.Context, tid xid.TID) (xid.Status, error) {
	resp, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpStatus, TID: uint64(tid)})
	if err != nil {
		return 0, err
	}
	return xid.Status(resp.Status), nil
}

// Delegate transfers responsibility for oid (0 = everything) from one
// transaction to another (paper: delegate).
func (c *Client) Delegate(ctx context.Context, from, to xid.TID, oid xid.OID) error {
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpDelegate,
		TID: uint64(from), Other: uint64(to), OID: uint64(oid)})
	return err
}

// Permit grants grantee conflict permission on grantor's locks (paper:
// permit). oid 0 = every object; grantee NilTID = any transaction.
func (c *Client) Permit(ctx context.Context, grantor, grantee xid.TID, oid xid.OID, ops xid.OpSet) error {
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpPermit,
		TID: uint64(grantor), Other: uint64(grantee), OID: uint64(oid), Mode: uint64(ops)})
	return err
}

// FormDependency records form_dependency(typ, ti, tj).
func (c *Client) FormDependency(ctx context.Context, typ xid.DepType, ti, tj xid.TID) error {
	_, err := c.roundTrip(ctx, &rpc.Request{Op: rpc.OpFormDep,
		TID: uint64(ti), Other: uint64(tj), Mode: uint64(typ)})
	return err
}

// Tx is a handle on one remote transaction; its operations execute
// inside the transaction's body on the server.
type Tx struct {
	c   *Client
	tid xid.TID
}

// Tx wraps tid in an operation handle (for transactions managed via
// explicit Initiate/Begin).
func (c *Client) Tx(tid xid.TID) *Tx { return &Tx{c: c, tid: tid} }

// ID returns the remote transaction ID.
func (tx *Tx) ID() xid.TID { return tx.tid }

func (tx *Tx) op(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
	req.TID = uint64(tx.tid)
	return tx.c.roundTrip(ctx, req)
}

// Lock acquires ops on oid (strict 2PL; held to termination).
func (tx *Tx) Lock(ctx context.Context, oid xid.OID, ops xid.OpSet) error {
	_, err := tx.op(ctx, &rpc.Request{Op: rpc.OpLock, OID: uint64(oid), Mode: uint64(ops)})
	return err
}

// Read returns oid's value under a read lock.
func (tx *Tx) Read(ctx context.Context, oid xid.OID) ([]byte, error) {
	resp, err := tx.op(ctx, &rpc.Request{Op: rpc.OpRead, OID: uint64(oid)})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write replaces oid's value under a write lock.
func (tx *Tx) Write(ctx context.Context, oid xid.OID, data []byte) error {
	_, err := tx.op(ctx, &rpc.Request{Op: rpc.OpWrite, OID: uint64(oid), Data: data})
	return err
}

// Create allocates a new object holding data.
func (tx *Tx) Create(ctx context.Context, data []byte) (xid.OID, error) {
	resp, err := tx.op(ctx, &rpc.Request{Op: rpc.OpCreate, Data: data})
	if err != nil {
		return xid.NilOID, err
	}
	return xid.OID(resp.OID), nil
}

// Delete removes oid.
func (tx *Tx) Delete(ctx context.Context, oid xid.OID) error {
	_, err := tx.op(ctx, &rpc.Request{Op: rpc.OpDelete, OID: uint64(oid)})
	return err
}

// Add escrow-adds delta to counter oid (commutative increment locks).
func (tx *Tx) Add(ctx context.Context, oid xid.OID, delta int64) error {
	_, err := tx.op(ctx, &rpc.Request{Op: rpc.OpAdd, OID: uint64(oid), Delta: delta})
	return err
}

// DeclareEscrow declares bounds [lo, hi] on counter oid.
func (tx *Tx) DeclareEscrow(ctx context.Context, oid xid.OID, lo, hi uint64) error {
	_, err := tx.op(ctx, &rpc.Request{Op: rpc.OpDeclareEscrow, OID: uint64(oid), Lo: lo, Hi: hi})
	return err
}

// ReadCounter reads counter oid under a read lock.
func (tx *Tx) ReadCounter(ctx context.Context, oid xid.OID) (uint64, error) {
	resp, err := tx.op(ctx, &rpc.Request{Op: rpc.OpReadCounter, OID: uint64(oid)})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

// Run executes fn as a remote transaction (initiate, begin, fn, commit)
// and retries retryable failures — transport drops, lease expiries,
// deadlock victimhood, admission sheds — through core.Retry, the same
// engine local transactions use. Overload responses carry a server
// backoff hint that floors the sleep. Terminal errors (including
// ErrUnknownOutcome, which must reconcile rather than re-run) return
// immediately.
func (c *Client) Run(ctx context.Context, opts core.RunOptions, fn func(ctx context.Context, tx *Tx) error) error {
	if opts.RetryAfter == nil {
		opts.RetryAfter = rpc.RetryAfterHint
	}
	return core.Retry(ctx, opts, nil, func(ctx context.Context) error {
		return c.runOnce(ctx, fn)
	})
}

// runOnce performs a single initiate/begin/fn/commit attempt.
func (c *Client) runOnce(ctx context.Context, fn func(ctx context.Context, tx *Tx) error) error {
	tid, err := c.Initiate(ctx)
	if err != nil {
		return err
	}
	if err := c.Begin(ctx, tid); err != nil {
		return err
	}
	if err := fn(ctx, c.Tx(tid)); err != nil {
		// Best-effort abort so the failed attempt strands nothing; its
		// own short deadline keeps a dead network from hanging the retry.
		actx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		c.Abort(actx, tid) //nolint:errcheck
		cancel()
		return fmt.Errorf("client: transaction body: %w", err)
	}
	return c.Commit(ctx, tid)
}
